//! The ecosystem actor: every participant type behind one `simnet::Actor`.

use crate::crawler::{Crawler, CrawlerCmd};
use crate::hydra::Hydra;
use ipfs_node::{IpfsNode, NodeCmd, WireMsg};
use ipfs_types::Cid;
use netgen::{RateStream, WorkloadSpec, ZipfSampler, N_REGIONS};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use simnet::{Actor, Ctx, Dur, NodeId, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Commands addressed to any ecosystem actor.
#[derive(Clone, Debug)]
pub enum EcoCmd {
    /// For IPFS nodes.
    Node(NodeCmd),
    /// For the crawler.
    Crawler(CrawlerCmd),
    /// For web users: GET `cid` via the frontend at `frontend`.
    WebGet {
        /// Frontend endpoint.
        frontend: NodeId,
        /// Content to request.
        cid: Cid,
    },
    /// Advance the web-user population's live replay stream by one tick
    /// (self-scheduled; the campaign fires the first one at window start).
    ReplayTick,
}

/// An HTTP reverse-proxy frontend fanning out to gateway overlay nodes.
#[derive(Clone, Debug, Default)]
pub struct Frontend {
    /// Overlay backends (empty = dead endpoint, always 404).
    pub backends: Vec<NodeId>,
    rr: usize,
    next_req: u64,
    pending: HashMap<u64, (NodeId, u64)>,
    queued: HashMap<NodeId, Vec<(u64, Cid)>>,
    /// Requests served `(found)` count: (ok, failed).
    pub served: (u64, u64),
}

impl Frontend {
    /// Frontend over the given backends.
    pub fn new(backends: Vec<NodeId>) -> Frontend {
        Frontend {
            backends,
            ..Default::default()
        }
    }

    fn forward<C: std::fmt::Debug>(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, C>,
        client: NodeId,
        client_req: u64,
        cid: Cid,
    ) {
        if self.backends.is_empty() {
            ctx.send(
                client,
                WireMsg::HttpResponse {
                    req_id: client_req,
                    found: false,
                },
            );
            self.served.1 += 1;
            return;
        }
        let backend = self.backends[self.rr % self.backends.len()];
        self.rr += 1;
        let req_id = self.next_req;
        self.next_req += 1;
        self.pending.insert(req_id, (client, client_req));
        if ctx.is_connected(backend) {
            ctx.send(backend, WireMsg::HttpRequest { req_id, cid });
        } else {
            self.queued.entry(backend).or_default().push((req_id, cid));
            ctx.dial(backend);
        }
    }

    fn on_message<C: std::fmt::Debug>(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, C>,
        from: NodeId,
        msg: WireMsg,
    ) {
        match msg {
            WireMsg::HttpRequest { req_id, cid } => self.forward(ctx, from, req_id, cid),
            WireMsg::HttpResponse { req_id, found } => {
                if let Some((client, client_req)) = self.pending.remove(&req_id) {
                    if found {
                        self.served.0 += 1;
                    } else {
                        self.served.1 += 1;
                    }
                    ctx.send(
                        client,
                        WireMsg::HttpResponse {
                            req_id: client_req,
                            found,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_dial_result<C: std::fmt::Debug>(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, C>,
        target: NodeId,
        ok: bool,
    ) {
        for (req_id, cid) in self.queued.remove(&target).unwrap_or_default() {
            if ok {
                ctx.send(target, WireMsg::HttpRequest { req_id, cid });
            } else if let Some((client, client_req)) = self.pending.remove(&req_id) {
                ctx.send(
                    client,
                    WireMsg::HttpResponse {
                        req_id: client_req,
                        found: false,
                    },
                );
                self.served.1 += 1;
            }
        }
    }
}

/// Direct fetches sampled in a tick are delivered to their fetcher nodes
/// as one [`simnet::Ev::CommandBatch`] per target, this far after the tick
/// boundary. Must stay comfortably above every cross-shard lookahead floor
/// (tens of milliseconds under the campaign latency model) so batches to
/// remote shards never violate the conservative-sync contract.
const REPLAY_FETCH_DELAY: Dur = Dur::from_secs(1);

/// Generative request driver carried by the [`WebUser`] actor in live
/// replay mode. Wiring tables (frontends, fetcher pools, CID catalog) are
/// resolved once at campaign build time; the rate stream and per-region
/// RNG streams advance tick by tick as the campaign runs, so no request
/// vector is ever materialised.
#[derive(Clone, Debug)]
pub struct ReplayDriver {
    /// The workload description (totals, curves, shares, flash crowd).
    pub spec: WorkloadSpec,
    stream: RateStream,
    sampler: ZipfSampler,
    /// Content index → CID (full catalog; the sampler ranks only the
    /// items published before the replay window opens).
    cids: Vec<Cid>,
    /// Functional gateway frontends with cumulative traffic weights.
    frontends: Vec<NodeId>,
    gw_cum: Vec<u64>,
    /// Per-region direct-fetch pools: segment-weighted copies of node
    /// ids, mirroring the static generator's fetcher mix.
    pools: [Vec<NodeId>; N_REGIONS],
    /// Per-region request streams (seed ⊕ region) plus a dedicated
    /// flash-crowd stream — each region's draw sequence is independent of
    /// how the others interleave, which keeps samples stable under any
    /// region-share reconfiguration.
    rngs: [StdRng; N_REGIONS],
    flash_rng: StdRng,
    /// Requests issued so far: `(http, direct fetch)`.
    pub issued: (u64, u64),
}

impl ReplayDriver {
    /// Build a driver from the spec and campaign wiring tables.
    /// `items` are `(content index, popularity weight)` pairs for the
    /// sampler; `gw_cum` must be the cumulative traffic weights aligned
    /// with `frontends` (strictly increasing, last = total).
    pub fn new(
        spec: WorkloadSpec,
        items: &[(u32, f64)],
        cids: Vec<Cid>,
        frontends: Vec<NodeId>,
        gw_cum: Vec<u64>,
        pools: [Vec<NodeId>; N_REGIONS],
    ) -> ReplayDriver {
        let stream = RateStream::new(&spec);
        let sampler = ZipfSampler::new(items);
        let rngs = std::array::from_fn(|r| StdRng::seed_from_u64(spec.seed ^ r as u64));
        let flash_rng = StdRng::seed_from_u64(spec.seed ^ 0xF1A5);
        ReplayDriver {
            spec,
            stream,
            sampler,
            cids,
            frontends,
            gw_cum,
            pools,
            rngs,
            flash_rng,
            issued: (0, 0),
        }
    }

    /// The CID a configured flash crowd hammers, if any.
    pub fn flash_cid(&self) -> Option<Cid> {
        let f = self.spec.flash?;
        if f.rank < self.sampler.len() {
            Some(self.cids[self.sampler.item_at_rank(f.rank) as usize])
        } else {
            None
        }
    }
}

/// An HTTP user population: fires GETs at gateway frontends.
#[derive(Clone, Debug, Default)]
pub struct WebUser {
    next_req: u64,
    queued: HashMap<NodeId, Vec<(u64, Cid)>>,
    /// Outcomes: `(ts, found)`.
    pub outcomes: Vec<(SimTime, bool)>,
    /// Live replay state (`None` in static-trace campaigns). Boxed so the
    /// idle-population variant of [`EcoActor`] stays small — the driver
    /// carries the spec, sampler table, and per-region RNG streams.
    pub replay: Option<Box<ReplayDriver>>,
}

impl WebUser {
    /// Fresh user population actor.
    pub fn new() -> WebUser {
        WebUser::default()
    }

    /// User population in live replay mode.
    pub fn with_replay(driver: ReplayDriver) -> WebUser {
        WebUser {
            replay: Some(Box::new(driver)),
            ..Default::default()
        }
    }

    /// One replay tick: emit this tick's request counts, sample CIDs and
    /// routes, fire HTTP gets, batch direct fetches per fetcher node, and
    /// self-schedule the next tick while the stream has more to give.
    fn replay_tick(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>) {
        // Take/put-back so the driver and `self.get` can be borrowed
        // side by side; nothing below touches `self.replay`.
        let Some(mut rep) = self.replay.take() else {
            return;
        };
        let more = self.drive_replay_tick(ctx, &mut rep);
        let tick = rep.spec.tick;
        self.replay = Some(rep);
        if more {
            ctx.schedule_self(tick, EcoCmd::ReplayTick);
        }
    }

    fn drive_replay_tick(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, EcoCmd>,
        rep: &mut ReplayDriver,
    ) -> bool {
        let Some((at, em)) = rep.stream.emit(&rep.spec) else {
            return false;
        };
        if rep.sampler.is_empty() {
            return false; // nothing fetchable: stop ticking
        }
        let flash = rep
            .spec
            .flash
            .filter(|f| f.active_at(at))
            .map(|f| (f.rank, f.boost));
        let range = rep.sampler.range(flash);
        let http_share = rep.spec.http_share_permille as u64;
        let mut direct: BTreeMap<NodeId, Vec<EcoCmd>> = BTreeMap::new();
        for r in 0..N_REGIONS {
            for _ in 0..em.per_region[r] {
                let x = rep.rngs[r].random_range(0..range);
                let cid = rep.cids[rep.sampler.sample(x, flash) as usize];
                let roll: u64 = rep.rngs[r].random_range(0..1000);
                let via_http =
                    (roll < http_share || rep.pools[r].is_empty()) && !rep.frontends.is_empty();
                if via_http {
                    let total = *rep.gw_cum.last().unwrap();
                    let g = rep.rngs[r].random_range(0..total);
                    let fe = rep.frontends[rep.gw_cum.partition_point(|c| *c <= g)];
                    rep.issued.0 += 1;
                    self.get(ctx, fe, cid);
                } else if !rep.pools[r].is_empty() {
                    let pool = &rep.pools[r];
                    let node = pool[rep.rngs[r].random_range(0..pool.len())];
                    rep.issued.1 += 1;
                    direct
                        .entry(node)
                        .or_default()
                        .push(EcoCmd::Node(NodeCmd::Fetch { cid }));
                }
            }
        }
        // Flash-crowd extras: the crowd arrives over HTTP (sudden external
        // demand hits the gateways first), all for the flash CID.
        if em.flash_extra > 0 && !rep.frontends.is_empty() {
            if let Some(cid) = rep.flash_cid() {
                for _ in 0..em.flash_extra {
                    let total = *rep.gw_cum.last().unwrap();
                    let g = rep.flash_rng.random_range(0..total);
                    let fe = rep.frontends[rep.gw_cum.partition_point(|c| *c <= g)];
                    rep.issued.0 += 1;
                    self.get(ctx, fe, cid);
                }
            }
        }
        // Direct fetches leave as one command batch per fetcher node —
        // one timer-wheel entry each instead of one per request.
        for (node, cmds) in direct {
            ctx.schedule_batch(node, REPLAY_FETCH_DELAY, cmds);
        }
        true
    }

    fn get<C: std::fmt::Debug>(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, C>,
        frontend: NodeId,
        cid: Cid,
    ) {
        let req_id = self.next_req;
        self.next_req += 1;
        if ctx.is_connected(frontend) {
            ctx.send(frontend, WireMsg::HttpRequest { req_id, cid });
        } else {
            self.queued.entry(frontend).or_default().push((req_id, cid));
            ctx.dial(frontend);
        }
    }

    fn on_dial_result<C: std::fmt::Debug>(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, C>,
        target: NodeId,
        ok: bool,
    ) {
        for (req_id, cid) in self.queued.remove(&target).unwrap_or_default() {
            if ok {
                ctx.send(target, WireMsg::HttpRequest { req_id, cid });
            } else {
                self.outcomes.push((ctx.now(), false));
            }
        }
    }
}

/// Every participant of the simulated ecosystem. `Clone` snapshots the
/// participant wholesale — the campaign-fork machinery clones every actor
/// together with the engine state.
#[derive(Clone)]
pub enum EcoActor {
    /// A full IPFS node (regular, platform, monitor, gateway overlay…).
    Node(Box<IpfsNode>),
    /// The DHT crawler.
    Crawler(Box<Crawler>),
    /// A Hydra-booster host.
    Hydra(Box<Hydra>),
    /// A gateway HTTP frontend.
    Frontend(Frontend),
    /// The web-user population.
    WebUser(WebUser),
}

impl EcoActor {
    /// Borrow the inner node (panics on other variants).
    pub fn node(&self) -> &IpfsNode {
        match self {
            EcoActor::Node(n) => n,
            _ => panic!("not a node actor"),
        }
    }

    /// Mutable inner node.
    pub fn node_mut(&mut self) -> &mut IpfsNode {
        match self {
            EcoActor::Node(n) => n,
            _ => panic!("not a node actor"),
        }
    }

    /// Borrow the crawler (panics on other variants).
    pub fn crawler(&self) -> &Crawler {
        match self {
            EcoActor::Crawler(c) => c,
            _ => panic!("not a crawler actor"),
        }
    }

    /// Borrow the web-user population (panics on other variants).
    pub fn webuser(&self) -> &WebUser {
        match self {
            EcoActor::WebUser(w) => w,
            _ => panic!("not a webuser actor"),
        }
    }

    /// Borrow the hydra (panics on other variants).
    pub fn hydra(&self) -> &Hydra {
        match self {
            EcoActor::Hydra(h) => h,
            _ => panic!("not a hydra actor"),
        }
    }
}

impl Actor for EcoActor {
    type Msg = WireMsg;
    type Cmd = EcoCmd;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>) {
        match self {
            EcoActor::Node(n) => n.handle_start(ctx),
            EcoActor::Hydra(h) => h.handle_start(ctx),
            EcoActor::Frontend(f) => {
                // Pre-dial backends so forwarding has warm connections.
                let backends = f.backends.clone();
                for b in backends {
                    ctx.dial(b);
                }
            }
            _ => {}
        }
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>) {
        if let EcoActor::Node(n) = self {
            n.handle_stop(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>, from: NodeId, msg: WireMsg) {
        match self {
            EcoActor::Node(n) => n.handle_message(ctx, from, msg),
            EcoActor::Crawler(c) => c.handle_message(ctx, from, msg),
            EcoActor::Hydra(h) => h.handle_message(ctx, from, msg),
            EcoActor::Frontend(f) => f.on_message(ctx, from, msg),
            EcoActor::WebUser(w) => {
                if let WireMsg::HttpResponse { found, .. } = msg {
                    w.outcomes.push((ctx.now(), found));
                }
            }
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>, cmd: EcoCmd) {
        match (self, cmd) {
            (EcoActor::Node(n), EcoCmd::Node(c)) => n.handle_command(ctx, c),
            (EcoActor::Crawler(cr), EcoCmd::Crawler(c)) => cr.handle_command(ctx, c),
            (EcoActor::WebUser(w), EcoCmd::WebGet { frontend, cid }) => w.get(ctx, frontend, cid),
            (EcoActor::WebUser(w), EcoCmd::ReplayTick) => w.replay_tick(ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>, token: u64) {
        match self {
            EcoActor::Node(n) => n.handle_timer(ctx, token),
            EcoActor::Crawler(c) => c.handle_timer(ctx, token),
            EcoActor::Hydra(h) => h.handle_timer(ctx, token),
            _ => {}
        }
    }

    fn on_inbound_connection(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, EcoCmd>,
        from: NodeId,
        relayed: bool,
    ) {
        match self {
            EcoActor::Node(n) => n.handle_inbound(ctx, from, relayed),
            EcoActor::Hydra(h) => h.handle_inbound(ctx, from),
            _ => {}
        }
    }

    fn on_dial_result(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg, EcoCmd>,
        target: NodeId,
        ok: bool,
        relayed: bool,
    ) {
        match self {
            EcoActor::Node(n) => n.handle_dial_result(ctx, target, ok, relayed),
            EcoActor::Crawler(c) => c.handle_dial_result(ctx, target, ok),
            EcoActor::Hydra(h) => h.handle_dial_result(ctx, target, ok),
            EcoActor::Frontend(f) => f.on_dial_result(ctx, target, ok),
            EcoActor::WebUser(w) => w.on_dial_result(ctx, target, ok),
        }
    }

    fn on_connection_closed(&mut self, ctx: &mut Ctx<'_, WireMsg, EcoCmd>, peer: NodeId) {
        if let EcoActor::Node(n) = self {
            n.handle_connection_closed(ctx, peer);
        }
    }
}
