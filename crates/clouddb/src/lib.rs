//! # clouddb — IP metadata databases
//!
//! The measurement side of the paper attributes IP addresses to cloud
//! providers (Udger), countries (MaxMind GeoLite2), autonomous systems, and
//! platforms (reverse DNS). This crate provides those databases as
//! longest-prefix-match tries plus a PTR map, with the same semantics as the
//! commercial originals — including the crucial "absent ⇒ non-cloud" rule.
//!
//! The databases are *populated* by `netgen` (which owns the synthetic
//! address plan) and *queried* by `tcsb-core` (the analysis pipeline); this
//! crate is pure mechanism.

pub mod dbs;
pub mod trie;

pub use dbs::{Asn, AsnDb, CloudDb, CountryCode, GeoDb, IpDatabases, ProviderId, ReverseDnsDb};
pub use trie::{Cidr, PrefixTrie};
