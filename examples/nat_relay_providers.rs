//! NAT-ed providers and circuit relays (§6 of the paper): a NAT-ed client
//! publishes through a relay, the exhaustive provider search retrieves the
//! circuit record, and the classification pipeline labels it — including
//! the "80% of NAT-ed peers use a cloud relay" analysis.
//!
//! ```sh
//! cargo run --release --example nat_relay_providers
//! ```

use ipfs_types::Cid;
use netgen::{ScenarioConfig, Segment};
use simnet::Dur;
use tcsb_core::{classify_provider, Campaign, CampaignOptions, EcoCmd, ProviderClass};

fn main() {
    let scenario = netgen::build(ScenarioConfig::tiny(33));
    let mut campaign = Campaign::new(
        scenario,
        CampaignOptions {
            with_workload: false,
            ..Default::default()
        },
    );
    campaign.run_for(Dur::from_hours(8));

    // Pick NAT-ed clients that are online right now and make them publish.
    let mut publishers = Vec::new();
    for (i, spec) in campaign.scenario.nodes.iter().enumerate() {
        if spec.segment == Segment::NatClient && campaign.sim.core().is_online(campaign.node_ids[i])
        {
            publishers.push(i);
        }
        if publishers.len() == 12 {
            break;
        }
    }
    println!(
        "publishing from {} NAT-ed clients via their relays…",
        publishers.len()
    );
    let mut cids = Vec::new();
    for (n, &i) in publishers.iter().enumerate() {
        let cid = Cid::from_seed(0x4A70_0000 + n as u64);
        cids.push(cid);
        campaign.sim.schedule_command(
            campaign.now(),
            campaign.node_ids[i],
            EcoCmd::Node(ipfs_node::NodeCmd::Publish { cid, size: 512 }),
        );
    }
    campaign.run_for(Dur::from_mins(10));

    // Exhaustive provider search (the paper's modified FindProviders).
    let resolved = campaign.resolve_providers(&cids, true, Dur::from_secs(10));
    let dbs = &campaign.scenario.dbs;
    let is_cloud = |ip: std::net::Ipv4Addr| dbs.cloud.lookup(ip).is_some();

    let mut nat_records = 0;
    let mut cloud_relays = 0;
    for (cid, recs, _) in &resolved {
        for rec in recs {
            let class = classify_provider(&[rec], is_cloud);
            if class == ProviderClass::Nat {
                nat_records += 1;
                for addr in rec.addrs.iter() {
                    if addr.is_circuit() {
                        let relay_ip = addr.ip4().expect("circuit has relay ip");
                        if is_cloud(relay_ip) {
                            cloud_relays += 1;
                        }
                        println!(
                            "{}…  NAT-ed provider via relay {} ({})",
                            &cid.to_string_canonical()[..16],
                            relay_ip,
                            if is_cloud(relay_ip) {
                                "cloud"
                            } else {
                                "non-cloud"
                            }
                        );
                    }
                }
            }
        }
    }
    println!();
    println!("NAT-ed provider records found: {nat_records}");
    if nat_records > 0 {
        println!(
            "relays hosted in the cloud: {:.0}%  (paper: ≈80%)",
            100.0 * cloud_relays as f64 / nat_records as f64
        );
    }
    println!("The record's visible IP is the *relay's*, not the provider's —");
    println!("exactly the subtlety that makes NAT-ed hosting lean on cloud nodes.");
}
