//! Group B–D experiments: traffic (Figs. 9–13), content providers
//! (Figs. 14–16) and sim-backed entry points (Figs. 18–20), all over one
//! workload campaign.

use crate::report::{Report, Unit};
use ipfs_types::{Cid, PeerId};
use kademlia::{ProviderRecord, TrafficClass};
use netgen::{ScenarioConfig, PAPER};
use simnet::Dur;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::Ipv4Addr;
use tcsb_core::{
    cid_cloud_stats, classify_provider, days_seen_histogram, lorenz_curve, share_of_top, Campaign,
    CampaignOptions, EcoCmd, ProviderClass,
};

const PROBE_SEED: u64 = 0x6A7E_0000_0000;

/// The workload campaign plus everything the probe discovered.
pub struct WorkloadData {
    /// The campaign (still live: provider resolutions advance it).
    pub campaign: Campaign,
    /// Gateway overlay peers discovered by probing: `(gateway idx, peer, ip)`.
    pub overlays: Vec<(usize, PeerId, Ipv4Addr)>,
    /// Engine counters snapshotted at the end of the main campaign, so the
    /// engine report stays comparable run-over-run no matter how much
    /// extra simulation later figures drive through the live campaign.
    pub engine: simnet::SimStats,
    /// Per-shard budget snapshotted with the counters.
    pub loads: Vec<simnet::ShardLoad>,
    /// Host wall-clock seconds the main campaign (incl. probe) took.
    pub wall_secs: f64,
}

/// Run the full workload campaign, then identify gateway overlay nodes with
/// the unique-content probe (§3 "Gateways").
pub fn run_workload(cfg: ScenarioConfig) -> WorkloadData {
    let scenario = netgen::build(cfg);
    let started = std::time::Instant::now();
    let mut campaign = Campaign::new(scenario, CampaignOptions::default());
    let duration = campaign.scenario.cfg.duration;
    campaign.run_for(duration);

    // --- gateway identification probe --------------------------------------
    // Publish one unique item per (gateway, round) on the monitor — we are
    // provably its only provider — then fetch it through the gateway's HTTP
    // side and watch who asks us for it over Bitswap.
    let rounds = 3usize;
    let functional: Vec<usize> = campaign
        .scenario
        .gateways
        .iter()
        .enumerate()
        .filter(|(_, g)| g.functional)
        .map(|(i, _)| i)
        .collect();
    let mut probe_cids: HashMap<Cid, usize> = HashMap::new();
    let t0 = campaign.now();
    for (n, &g) in functional.iter().enumerate() {
        for r in 0..rounds {
            let cid = Cid::from_seed(PROBE_SEED + (g as u64) * 16 + r as u64);
            probe_cids.insert(cid, g);
            campaign.sim.schedule_command(
                t0 + Dur::from_secs(2 * (n * rounds + r) as u64),
                campaign.monitor,
                EcoCmd::Node(ipfs_node::NodeCmd::Publish { cid, size: 1024 }),
            );
        }
    }
    campaign.run_for(Dur::from_mins(10)); // provides settle
    let log_mark = campaign.monitor_log().len();
    let t1 = campaign.now();
    for (n, &g) in functional.iter().enumerate() {
        for r in 0..rounds {
            let cid = Cid::from_seed(PROBE_SEED + (g as u64) * 16 + r as u64);
            campaign.sim.schedule_command(
                t1 + Dur::from_secs(5 * (n * rounds + r) as u64),
                campaign.webuser,
                EcoCmd::WebGet {
                    frontend: campaign.frontends[g],
                    cid,
                },
            );
        }
    }
    campaign.run_for(Dur::from_secs(5 * (functional.len() * rounds) as u64) + Dur::from_mins(6));
    let mut overlays: BTreeSet<(usize, PeerId, Ipv4Addr)> = BTreeSet::new();
    let monitor_peer = {
        // The monitor's own peer id — exclude self-noise.
        campaign.sim.actor(campaign.monitor).node().peer_id()
    };
    for e in &campaign.monitor_log()[log_mark..] {
        for cid in &e.cids {
            if let Some(&g) = probe_cids.get(cid) {
                if e.peer != monitor_peer {
                    overlays.insert((g, e.peer, *e.addr.ip()));
                }
            }
        }
    }
    let engine = campaign.sim.core().stats.clone();
    let loads = campaign.sim.shard_loads();
    WorkloadData {
        campaign,
        overlays: overlays.into_iter().collect(),
        engine,
        loads,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Engine-health section for the workload campaign.
pub fn engine(data: &WorkloadData) -> Report {
    crate::report::engine_report(
        "engine-workload",
        "Engine counters — workload campaign",
        &data.engine,
        data.wall_secs,
        data.campaign.shards(),
        &data.loads,
    )
}

fn is_cloud(data: &WorkloadData) -> impl Fn(Ipv4Addr) -> bool + '_ {
    let dbs = &data.campaign.scenario.dbs;
    move |ip| dbs.cloud.lookup(ip).is_some()
}

/// Fig. 9: request frequency per identifier, in days seen.
pub fn fig09(data: &WorkloadData) -> Report {
    let log = data.campaign.hydra_log();
    let day = |ns: u64| ns / Dur::DAY.0;
    let cid_hist = days_seen_histogram(log.iter().filter_map(|e| e.cid.map(|c| (c, day(e.ts_ns)))));
    let ip_hist = days_seen_histogram(log.iter().map(|e| (*e.addr.ip(), day(e.ts_ns))));
    let peer_hist = days_seen_histogram(log.iter().map(|e| (e.peer, day(e.ts_ns))));
    let upto3 = |h: &[u64]| {
        let total: u64 = h.iter().sum();
        let head: u64 = h.iter().take(3).sum();
        if total == 0 {
            0.0
        } else {
            head as f64 / total as f64
        }
    };
    let mut r = Report::new("fig09", "Request frequency per identifier (days seen)");
    r.val("hydra log entries", log.len() as f64, Unit::Count);
    r.val("CIDs seen ≤3 days", upto3(&cid_hist), Unit::Pct);
    r.val("IPs seen ≤3 days", upto3(&ip_hist), Unit::Pct);
    r.val("peer IDs seen ≤3 days", upto3(&peer_hist), Unit::Pct);
    r.note("Paper: the vast majority of CIDs are requested on only 1–3 distinct days (file-transfer usage), and most IPs/peer IDs are short-lived too.");
    r.note(format!(
        "CID days-seen histogram head: {:?}",
        &cid_hist[..cid_hist.len().min(6)]
    ));
    r
}

/// Fig. 10: peer-ID concentration with gateway attribution.
pub fn fig10(data: &WorkloadData) -> Report {
    let dht_counts: BTreeMap<PeerId, u64> = {
        let mut m = BTreeMap::new();
        for e in data.campaign.hydra_log() {
            *m.entry(e.peer).or_insert(0) += 1;
        }
        m
    };
    let bs_counts: BTreeMap<PeerId, u64> = {
        let mut m = BTreeMap::new();
        for e in data.campaign.monitor_log() {
            *m.entry(e.peer).or_insert(0) += 1;
        }
        m
    };
    let gw_peers: HashSet<PeerId> = data.overlays.iter().map(|(_, p, _)| *p).collect();
    let share_from = |m: &BTreeMap<PeerId, u64>, set: &HashSet<PeerId>| {
        let total: u64 = m.values().sum();
        let hit: u64 = m
            .iter()
            .filter(|(p, _)| set.contains(p))
            .map(|(_, c)| *c)
            .sum();
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    };
    let mut r = Report::new(
        "fig10",
        "DHT/Bitswap peer-ID concentration (simplified Pareto)",
    );
    let dht_curve = lorenz_curve(&dht_counts);
    let bs_curve = lorenz_curve(&bs_counts);
    r.cmp(
        "DHT: top-5% peer IDs traffic share",
        PAPER.top5pct_peer_traffic,
        share_of_top(&dht_curve, 0.05),
        Unit::Pct,
    );
    r.val(
        "Bitswap: top-5% peer IDs traffic share",
        share_of_top(&bs_curve, 0.05),
        Unit::Pct,
    );
    r.val(
        "DHT traffic from gateway peers (paper ≈1%)",
        share_from(&dht_counts, &gw_peers),
        Unit::Pct,
    );
    r.val(
        "Bitswap traffic from gateway peers (paper ≈18%)",
        share_from(&bs_counts, &gw_peers),
        Unit::Pct,
    );
    r.note("Gateways satisfy most requests over Bitswap relationships and barely touch the DHT — their share must be far higher in the Bitswap log than in the DHT log.");
    r
}

/// Fig. 11: IP concentration with cloud attribution.
pub fn fig11(data: &WorkloadData) -> Report {
    let cloud = is_cloud(data);
    let mut dht_ips: BTreeMap<Ipv4Addr, u64> = BTreeMap::new();
    for e in data.campaign.hydra_log() {
        *dht_ips.entry(*e.addr.ip()).or_insert(0) += 1;
    }
    let mut bs_ips: BTreeMap<Ipv4Addr, u64> = BTreeMap::new();
    for e in data.campaign.monitor_log() {
        *bs_ips.entry(*e.addr.ip()).or_insert(0) += 1;
    }
    let cloud_share = |m: &BTreeMap<Ipv4Addr, u64>| {
        let total: u64 = m.values().sum();
        let hit: u64 = m
            .iter()
            .filter(|(ip, _)| cloud(**ip))
            .map(|(_, c)| *c)
            .sum();
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    };
    let mut r = Report::new("fig11", "DHT/Bitswap IP concentration and cloud share");
    let curve = lorenz_curve(&dht_ips);
    r.cmp(
        "DHT: top-5% IPs traffic share",
        0.94,
        share_of_top(&curve, 0.05),
        Unit::Pct,
    );
    r.cmp(
        "DHT traffic from cloud IPs",
        PAPER.dht_cloud_traffic,
        cloud_share(&dht_ips),
        Unit::Pct,
    );
    r.cmp(
        "Bitswap traffic from cloud IPs",
        PAPER.bitswap_cloud_traffic,
        cloud_share(&bs_ips),
        Unit::Pct,
    );
    r.note("Cloud nodes dominate DHT traffic far more than Bitswap traffic (hydra amplification + platform reproviding live on the DHT).");
    r
}

/// Fig. 12: cloud share per traffic type, by IP count and by volume.
pub fn fig12(data: &WorkloadData) -> Report {
    let cloud = is_cloud(data);
    let log = data.campaign.hydra_log();
    let mut per_class_ips: HashMap<TrafficClass, HashSet<Ipv4Addr>> = HashMap::new();
    let mut per_class_msgs: HashMap<TrafficClass, (u64, u64)> = HashMap::new(); // (cloud, all)
    let mut all_ips: HashSet<Ipv4Addr> = HashSet::new();
    let mut aws_msgs = 0u64;
    let dbs = &data.campaign.scenario.dbs;
    let aws = dbs.cloud.id_of("amazon_aws");
    for e in log.iter() {
        let ip = *e.addr.ip();
        all_ips.insert(ip);
        per_class_ips.entry(e.class).or_default().insert(ip);
        let slot = per_class_msgs.entry(e.class).or_insert((0, 0));
        slot.1 += 1;
        if cloud(ip) {
            slot.0 += 1;
        }
        if dbs.cloud.lookup(ip) == aws && aws.is_some() {
            aws_msgs += 1;
        }
    }
    let ip_cloud_share = |set: &HashSet<Ipv4Addr>| {
        if set.is_empty() {
            return 0.0;
        }
        set.iter().filter(|ip| cloud(**ip)).count() as f64 / set.len() as f64
    };
    let total_msgs: u64 = per_class_msgs.values().map(|(_, a)| *a).sum();
    let cloud_msgs: u64 = per_class_msgs.values().map(|(c, _)| *c).sum();
    let msg_share = |class: TrafficClass| {
        per_class_msgs
            .get(&class)
            .map(|(c, a)| if *a == 0 { 0.0 } else { *c as f64 / *a as f64 })
            .unwrap_or(0.0)
    };
    let mut r = Report::new("fig12", "Cloud per traffic type (IP count vs volume)");
    r.cmp(
        "cloud share of distinct IPs",
        PAPER.traffic_cloud_ip_share,
        ip_cloud_share(&all_ips),
        Unit::Pct,
    );
    r.cmp(
        "cloud share of download-IPs",
        0.45,
        ip_cloud_share(
            per_class_ips
                .get(&TrafficClass::Download)
                .unwrap_or(&HashSet::new()),
        ),
        Unit::Pct,
    );
    r.cmp(
        "cloud share of advertise-IPs",
        0.34,
        ip_cloud_share(
            per_class_ips
                .get(&TrafficClass::Advertise)
                .unwrap_or(&HashSet::new()),
        ),
        Unit::Pct,
    );
    r.cmp(
        "cloud share of messages (volume)",
        PAPER.traffic_cloud_msg_share,
        if total_msgs == 0 {
            0.0
        } else {
            cloud_msgs as f64 / total_msgs as f64
        },
        Unit::Pct,
    );
    r.cmp(
        "cloud share of download messages",
        0.98,
        msg_share(TrafficClass::Download),
        Unit::Pct,
    );
    r.cmp(
        "AWS share of messages",
        0.68,
        if total_msgs == 0 {
            0.0
        } else {
            aws_msgs as f64 / total_msgs as f64
        },
        Unit::Pct,
    );
    // Traffic class mix (§5 headline).
    let dl = per_class_msgs
        .get(&TrafficClass::Download)
        .map(|(_, a)| *a)
        .unwrap_or(0);
    let adv = per_class_msgs
        .get(&TrafficClass::Advertise)
        .map(|(_, a)| *a)
        .unwrap_or(0);
    let other = per_class_msgs
        .get(&TrafficClass::Other)
        .map(|(_, a)| *a)
        .unwrap_or(0);
    let t = (dl + adv + other).max(1) as f64;
    r.cmp(
        "download share of DHT messages",
        PAPER.traffic_download_share,
        dl as f64 / t,
        Unit::Pct,
    );
    r.cmp(
        "advertise share of DHT messages",
        PAPER.traffic_advertise_share,
        adv as f64 / t,
        Unit::Pct,
    );
    r.cmp(
        "other share of DHT messages",
        PAPER.traffic_other_share,
        other as f64 / t,
        Unit::Pct,
    );
    r
}

/// Fig. 13: platforms behind the traffic, via reverse DNS + the hydra
/// peer-ID set.
pub fn fig13(data: &WorkloadData) -> Report {
    let heads: HashSet<PeerId> = data.campaign.hydra_heads().into_iter().collect();
    let log = data.campaign.hydra_log();
    let dbs = &data.campaign.scenario.dbs;
    let bucket_of = |ip: Ipv4Addr, peer: &PeerId| -> String {
        if heads.contains(peer) {
            return "hydra (peer-ID set)".into();
        }
        if let Some(host) = dbs.rdns.lookup(ip) {
            for suffix in [
                "hydra.amazonaws.com",
                "web3.storage",
                "nft.storage",
                "pinata.cloud",
                "ipfs-bank.net",
                "filebase.com",
            ] {
                if host.ends_with(suffix) {
                    return suffix.into();
                }
            }
            if host.ends_with("amazonaws.com") {
                return "amazon (other)".into();
            }
        }
        "unknown".into()
    };
    let mut total = 0u64;
    let mut dl_total = 0u64;
    let mut adv_total = 0u64;
    let mut by_bucket: BTreeMap<String, u64> = BTreeMap::new();
    let mut dl_by_bucket: BTreeMap<String, u64> = BTreeMap::new();
    let mut adv_by_bucket: BTreeMap<String, u64> = BTreeMap::new();
    for e in log.iter() {
        let b = bucket_of(*e.addr.ip(), &e.peer);
        total += 1;
        *by_bucket.entry(b.clone()).or_insert(0) += 1;
        match e.class {
            TrafficClass::Download => {
                dl_total += 1;
                *dl_by_bucket.entry(b).or_insert(0) += 1;
            }
            TrafficClass::Advertise => {
                adv_total += 1;
                *adv_by_bucket.entry(b).or_insert(0) += 1;
            }
            TrafficClass::Other => {}
        }
    }
    let share = |m: &BTreeMap<String, u64>, k: &str, t: u64| {
        if t == 0 {
            0.0
        } else {
            *m.get(k).unwrap_or(&0) as f64 / t as f64
        }
    };
    // Bitswap side: ipfs-bank dominance.
    let mut bs_total = 0u64;
    let mut bs_bank = 0u64;
    for e in data.campaign.monitor_log() {
        bs_total += 1;
        if dbs
            .rdns
            .lookup(*e.addr.ip())
            .map(|h| h.ends_with("ipfs-bank.net"))
            .unwrap_or(false)
        {
            bs_bank += 1;
        }
    }
    let mut r = Report::new("fig13", "Platforms generating traffic (reverse DNS)");
    r.cmp(
        "hydra share of DHT traffic",
        PAPER.hydra_dht_share,
        share(&by_bucket, "hydra (peer-ID set)", total),
        Unit::Pct,
    );
    r.cmp(
        "hydra share of download traffic",
        PAPER.hydra_download_share,
        share(&dl_by_bucket, "hydra (peer-ID set)", dl_total),
        Unit::Pct,
    );
    let storage_adv = share(&adv_by_bucket, "web3.storage", adv_total)
        + share(&adv_by_bucket, "nft.storage", adv_total)
        + share(&adv_by_bucket, "pinata.cloud", adv_total);
    r.val(
        "storage platforms' share of advertise traffic",
        storage_adv,
        Unit::Pct,
    );
    r.val(
        "ipfs-bank share of Bitswap traffic",
        if bs_total == 0 {
            0.0
        } else {
            bs_bank as f64 / bs_total as f64
        },
        Unit::Pct,
    );
    r.note("Paper: Hydras dominate DHT download traffic (proactive cache-fill), storage platforms dominate advertisement, the ipfs-bank gateway platform dominates Bitswap.");
    r.note("Hydra advertise share must be ≈0 — hydras never advertise content.");
    r.cmp(
        "hydra share of advertise traffic",
        0.0,
        share(&adv_by_bucket, "hydra (peer-ID set)", adv_total),
        Unit::Pct,
    );
    r
}

/// Provider-record dataset: sample CIDs from the monitor's Bitswap log and
/// resolve them exhaustively (the §3 "Provider Records" pipeline).
pub struct ProviderDataset {
    /// `(cid, reachable records, contacted)` per sampled CID.
    pub resolved: Vec<(Cid, Vec<ProviderRecord>, usize)>,
    /// Total records before the reachability filter.
    pub raw_records: usize,
}

/// Build the provider dataset (mutates the campaign clock).
pub fn collect_providers(data: &mut WorkloadData, max_cids: usize) -> ProviderDataset {
    // Daily-sampled CIDs from the monitor traces. The paper resolved each
    // day's CIDs the same day; we sample from the most recent day so the
    // records are still fresh at resolution time.
    let last_ts = data
        .campaign
        .monitor_log()
        .last()
        .map(|e| e.ts.0)
        .unwrap_or(0);
    let cutoff = last_ts.saturating_sub(Dur::DAY.0);
    let mut seen: BTreeSet<Cid> = BTreeSet::new();
    for e in data.campaign.monitor_log() {
        if e.ts.0 < cutoff {
            continue;
        }
        for c in &e.cids {
            seen.insert(*c);
        }
    }
    // Drop our own probe CIDs.
    let probe: HashSet<Cid> = (0..4096u64)
        .map(|i| Cid::from_seed(PROBE_SEED + i))
        .collect();
    let cids: Vec<Cid> = seen
        .into_iter()
        .filter(|c| !probe.contains(c))
        .take(max_cids)
        .collect();
    let resolved_raw = data
        .campaign
        .resolve_providers(&cids, true, Dur::from_secs(6));
    let raw_records: usize = resolved_raw.iter().map(|(_, r, _)| r.len()).sum();
    let resolved = resolved_raw
        .into_iter()
        .map(|(cid, recs, contacted)| {
            let live: Vec<ProviderRecord> = recs
                .into_iter()
                .filter(|r| data.campaign.record_reachable(r))
                .collect();
            (cid, live, contacted)
        })
        .collect();
    ProviderDataset {
        resolved,
        raw_records,
    }
}

/// Fig. 14: classification of providers + relay usage of NAT-ed providers.
pub fn fig14(data: &WorkloadData, ds: &ProviderDataset) -> Report {
    let cloud = is_cloud(data);
    let mut by_provider: BTreeMap<PeerId, Vec<&ProviderRecord>> = BTreeMap::new();
    for (_, recs, _) in &ds.resolved {
        for r in recs {
            by_provider.entry(r.provider).or_default().push(r);
        }
    }
    let mut counts: BTreeMap<ProviderClass, u64> = BTreeMap::new();
    let mut nat_relay_cloud = 0u64;
    let mut nat_relay_total = 0u64;
    for recs in by_provider.values() {
        let class = classify_provider(recs, &cloud);
        *counts.entry(class).or_insert(0) += 1;
        if class == ProviderClass::Nat {
            for rec in recs {
                for addr in rec.addrs.iter() {
                    if addr.is_circuit() {
                        if let Some(relay_ip) = addr.ip4() {
                            nat_relay_total += 1;
                            if cloud(relay_ip) {
                                nat_relay_cloud += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    let total: u64 = counts.values().sum();
    let share = |c: ProviderClass| {
        if total == 0 {
            0.0
        } else {
            *counts.get(&c).unwrap_or(&0) as f64 / total as f64
        }
    };
    let mut r = Report::new("fig14", "Classification of content providers");
    r.val("sampled CIDs", ds.resolved.len() as f64, Unit::Count);
    r.val("unique providers", total as f64, Unit::Count);
    r.cmp(
        "NAT-ed provider share",
        PAPER.providers_nat_share,
        share(ProviderClass::Nat),
        Unit::Pct,
    );
    r.cmp(
        "cloud provider share",
        PAPER.providers_cloud_share,
        share(ProviderClass::Cloud),
        Unit::Pct,
    );
    r.cmp(
        "non-cloud provider share",
        PAPER.providers_noncloud_share,
        share(ProviderClass::NonCloud),
        Unit::Pct,
    );
    r.cmp(
        "hybrid provider share",
        PAPER.providers_hybrid_share,
        share(ProviderClass::Hybrid),
        Unit::Pct,
    );
    r.cmp(
        "NAT-ed providers using a cloud relay",
        PAPER.nat_cloud_relay_share,
        if nat_relay_total == 0 {
            0.0
        } else {
            nat_relay_cloud as f64 / nat_relay_total as f64
        },
        Unit::Pct,
    );
    r
}

/// Fig. 15: provider popularity (records per provider peer).
pub fn fig15(data: &WorkloadData, ds: &ProviderDataset) -> Report {
    let cloud = is_cloud(data);
    let mut appearances: BTreeMap<PeerId, u64> = BTreeMap::new();
    let mut records_by_provider: BTreeMap<PeerId, Vec<&ProviderRecord>> = BTreeMap::new();
    for (_, recs, _) in &ds.resolved {
        for r in recs {
            *appearances.entry(r.provider).or_insert(0) += 1;
            records_by_provider.entry(r.provider).or_default().push(r);
        }
    }
    let curve = lorenz_curve(&appearances);
    let total_records: u64 = appearances.values().sum();
    // Class split of the records themselves.
    let mut class_records: BTreeMap<ProviderClass, u64> = BTreeMap::new();
    for (peer, recs) in &records_by_provider {
        let class = classify_provider(recs, &cloud);
        *class_records.entry(class).or_insert(0) += appearances[peer];
    }
    let rec_share = |c: ProviderClass| {
        if total_records == 0 {
            0.0
        } else {
            *class_records.get(&c).unwrap_or(&0) as f64 / total_records as f64
        }
    };
    let mut r = Report::new(
        "fig15",
        "Provider popularity (simplified Pareto of records)",
    );
    r.cmp(
        "records covered by top-1% providers",
        PAPER.top1pct_provider_record_share,
        share_of_top(&curve, 0.01),
        Unit::Pct,
    );
    r.val(
        "record share of cloud providers (paper ≈70% of popular)",
        rec_share(ProviderClass::Cloud),
        Unit::Pct,
    );
    r.cmp(
        "record share of NAT-ed providers",
        0.08,
        rec_share(ProviderClass::Nat),
        Unit::Pct,
    );
    r.cmp(
        "record share of non-cloud providers",
        0.22,
        rec_share(ProviderClass::NonCloud),
        Unit::Pct,
    );
    r
}

/// Fig. 16: CIDs classified by the cloudness of their provider sets.
pub fn fig16(data: &WorkloadData, ds: &ProviderDataset) -> Report {
    let cloud = is_cloud(data);
    let per_cid: Vec<(Cid, Vec<&ProviderRecord>)> = ds
        .resolved
        .iter()
        .map(|(cid, recs, _)| (*cid, recs.iter().collect()))
        .collect();
    let s = cid_cloud_stats(&per_cid, &cloud);
    let mut r = Report::new("fig16", "CIDs classified by their providers");
    r.val("CIDs with ≥1 provider record", s.total as f64, Unit::Count);
    r.cmp(
        "≥1 cloud provider",
        PAPER.cids_any_cloud,
        s.any_cloud,
        Unit::Pct,
    );
    r.cmp(
        "≥50% cloud providers",
        PAPER.cids_majority_cloud,
        s.majority_cloud,
        Unit::Pct,
    );
    r.cmp(
        "only cloud providers",
        PAPER.cids_all_cloud,
        s.all_cloud,
        Unit::Pct,
    );
    r.cmp(
        "≥1 non-cloud provider (alternate reading)",
        0.77,
        s.any_noncloud,
        Unit::Pct,
    );
    r
}

/// Figs. 18+19: gateway frontend vs overlay addresses, by provider and
/// country.
pub fn fig18_19(data: &WorkloadData) -> (Report, Report) {
    let dbs = &data.campaign.scenario.dbs;
    // Frontend IPs: passive DNS + active resolution over gateway hosts.
    let mut frontend_ips: BTreeSet<Ipv4Addr> = BTreeSet::new();
    for g in &data.campaign.scenario.gateways {
        frontend_ips.extend(data.campaign.scenario.pdns.ips_for(&g.host));
        frontend_ips.extend(data.campaign.scenario.dns.resolve_a(&g.host));
    }
    let overlay_ips: BTreeSet<Ipv4Addr> = data.overlays.iter().map(|(_, _, ip)| *ip).collect();
    let provider_share = |ips: &BTreeSet<Ipv4Addr>, name: &str| {
        if ips.is_empty() {
            return 0.0;
        }
        ips.iter()
            .filter(|ip| {
                dbs.cloud
                    .lookup(**ip)
                    .map(|id| dbs.cloud.name(id) == name)
                    .unwrap_or(false)
            })
            .count() as f64
            / ips.len() as f64
    };
    let noncloud_share = |ips: &BTreeSet<Ipv4Addr>| {
        if ips.is_empty() {
            return 0.0;
        }
        ips.iter()
            .filter(|ip| dbs.cloud.lookup(**ip).is_none())
            .count() as f64
            / ips.len() as f64
    };
    let country_share = |ips: &BTreeSet<Ipv4Addr>, cc: &str| {
        if ips.is_empty() {
            return 0.0;
        }
        ips.iter()
            .filter(|ip| {
                dbs.geo
                    .lookup(**ip)
                    .map(|c| c.as_str() == cc)
                    .unwrap_or(false)
            })
            .count() as f64
            / ips.len() as f64
    };
    let mut r18 = Report::new("fig18", "Gateway frontend/overlay IPs by cloud provider");
    r18.val("frontend IPs", frontend_ips.len() as f64, Unit::Count);
    r18.val(
        "overlay IPs (probe-discovered)",
        overlay_ips.len() as f64,
        Unit::Count,
    );
    r18.val(
        "frontends: cloudflare share",
        provider_share(&frontend_ips, "cloudflare_inc"),
        Unit::Pct,
    );
    r18.val(
        "frontends: non-cloud share",
        noncloud_share(&frontend_ips),
        Unit::Pct,
    );
    r18.val(
        "overlays: cloudflare share",
        provider_share(&overlay_ips, "cloudflare_inc"),
        Unit::Pct,
    );
    r18.val(
        "overlays: non-cloud share",
        noncloud_share(&overlay_ips),
        Unit::Pct,
    );
    let discovered_gateways: BTreeSet<usize> = data.overlays.iter().map(|(g, _, _)| *g).collect();
    let unique_overlay_ids: BTreeSet<PeerId> = data.overlays.iter().map(|(_, p, _)| *p).collect();
    r18.cmp(
        "functional gateways discovered",
        PAPER.gateways_functional as f64,
        discovered_gateways.len() as f64,
        Unit::Count,
    );
    r18.val(
        "unique overlay peer IDs (paper: 119)",
        unique_overlay_ids.len() as f64,
        Unit::Count,
    );
    r18.note("Cloudflare dominates both sides; a commendable non-cloud share remains (community gateways).");

    let mut r19 = Report::new("fig19", "Gateway frontend/overlay IPs by geolocation");
    for cc in ["US", "DE", "NL"] {
        r19.val(
            &format!("frontends in {cc}"),
            country_share(&frontend_ips, cc),
            Unit::Pct,
        );
    }
    for cc in ["US", "DE"] {
        r19.val(
            &format!("overlays in {cc}"),
            country_share(&overlay_ips, cc),
            Unit::Pct,
        );
    }
    r19.note("Paper: US and DE dominate; NL shows up on the frontend side (anycast vantage).");
    (r18, r19)
}

/// Fig. 20: ENS-referenced content — providers and geolocation.
pub fn fig20(data: &mut WorkloadData, max_cids: usize) -> Report {
    let (records, stats) = ens::extract_ipfs_records(&data.campaign.scenario.ens_resolvers, 1000);
    let sample: Vec<Cid> = records.iter().map(|r| r.cid).take(max_cids).collect();
    let resolved = data
        .campaign
        .resolve_providers(&sample, false, Dur::from_secs(6));
    let dbs = &data.campaign.scenario.dbs;
    let mut ips: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut resolved_with_providers = 0usize;
    for (_, recs, _) in &resolved {
        if !recs.is_empty() {
            resolved_with_providers += 1;
        }
        for r in recs {
            for a in r.addrs.iter() {
                if let Some(ip) = a.ip4() {
                    ips.insert(ip);
                }
            }
        }
    }
    let cloud_share = if ips.is_empty() {
        0.0
    } else {
        ips.iter()
            .filter(|ip| dbs.cloud.lookup(**ip).is_some())
            .count() as f64
            / ips.len() as f64
    };
    let us_de = if ips.is_empty() {
        0.0
    } else {
        ips.iter()
            .filter(|ip| {
                dbs.geo
                    .lookup(**ip)
                    .map(|c| c.as_str() == "US" || c.as_str() == "DE")
                    .unwrap_or(false)
            })
            .count() as f64
            / ips.len() as f64
    };
    let mut r = Report::new(
        "fig20",
        "ENS-referenced IPFS content: providers and geolocation",
    );
    r.val(
        "ENS ipfs_ns records extracted",
        stats.domains as f64,
        Unit::Count,
    );
    r.val("sampled CIDs resolved", resolved.len() as f64, Unit::Count);
    r.val(
        "  with ≥1 provider record",
        resolved_with_providers as f64,
        Unit::Count,
    );
    r.val("unique provider IPs", ips.len() as f64, Unit::Count);
    r.cmp(
        "cloud share of ENS content providers",
        PAPER.ens_cloud_share,
        cloud_share,
        Unit::Pct,
    );
    r.cmp(
        "US+DE share of ENS content",
        PAPER.ens_us_de_share,
        us_de,
        Unit::Pct,
    );
    r.note("The blockchain-side name registry is decentralized; the referenced bytes sit on a handful of cloud storage platforms (choopa/vultr/contabo in our plan).");
    r
}
