//! DHT wire messages.
//!
//! Mirrors the go-libp2p-kad-dht RPC surface the paper's tools speak:
//! `FIND_NODE`, `GET_PROVIDERS`, `ADD_PROVIDER` and `PING`. Each message
//! carries the sender's [`PeerInfo`] (in the real protocol this arrives via
//! the identify exchange on connection setup) plus a flag telling whether the
//! sender operates in DHT *server* mode — only servers are eligible for
//! routing tables.

use ipfs_types::{Cid, Key256, Multiaddr, PeerId};
use serde::{Deserialize, Serialize};
use simnet::{NodeId, SimTime};

/// A shared, immutable list of advertised multiaddresses.
///
/// Every routing-table response clones ~20 peer infos and every provider
/// record carries its provider's addresses; behind an `Arc` those clones
/// are refcount bumps instead of per-message heap copies — the single
/// biggest allocation source in a campaign before this change.
pub type AddrList = std::sync::Arc<[Multiaddr]>;

/// The shared empty address list (no per-call allocation).
pub fn no_addrs() -> AddrList {
    static EMPTY: std::sync::OnceLock<AddrList> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| Vec::new().into()).clone()
}

/// What a node knows about a peer: identity, advertised addresses, and the
/// simulation endpoint handle used to dial it (stand-in for "the IP inside
/// the multiaddr", see DESIGN.md §4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerInfo {
    /// The peer's identity.
    pub id: PeerId,
    /// Advertised multiaddresses (relay addresses for NAT-ed providers).
    pub addrs: AddrList,
    /// Simulation endpoint for dialing.
    pub endpoint: NodeId,
}

/// A provider record: the DHT value mapping a CID to a provider's contact
/// information (§2 "Content Advertisement").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProviderRecord {
    /// The advertised content.
    pub cid: Cid,
    /// The providing peer.
    pub provider: PeerId,
    /// The provider's advertised addresses; a `/p2p-circuit` address here
    /// means the provider is NAT-ed and reachable via its relay.
    pub addrs: AddrList,
    /// Endpoint handle of the provider itself.
    pub endpoint: NodeId,
    /// For NAT-ed providers publishing a `/p2p-circuit` address: the relay's
    /// endpoint, which the downloader must dial through.
    pub relay_endpoint: Option<NodeId>,
    /// When the record was stored (receiver-side bookkeeping).
    pub stored_at: SimTime,
}

impl ProviderRecord {
    /// Whether the provider can only be reached through a relay.
    pub fn is_relayed(&self) -> bool {
        self.relay_endpoint.is_some() || self.addrs.iter().any(|a| a.is_circuit())
    }
}

/// DHT request bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DhtRequest {
    /// Liveness probe.
    Ping,
    /// Return the k closest known peers to `target`.
    FindNode {
        /// Lookup target key.
        target: Key256,
    },
    /// Return provider records for `cid` plus closer peers.
    GetProviders {
        /// The content being resolved.
        cid: Cid,
    },
    /// Store a provider record (no response in the real protocol).
    AddProvider {
        /// The record to store.
        record: ProviderRecord,
    },
}

impl DhtRequest {
    /// The keyspace target this request routes towards.
    pub fn target(&self) -> Option<Key256> {
        match self {
            DhtRequest::Ping => None,
            DhtRequest::FindNode { target } => Some(*target),
            DhtRequest::GetProviders { cid } => Some(cid.dht_key()),
            DhtRequest::AddProvider { record } => Some(record.cid.dht_key()),
        }
    }

    /// Traffic classification used throughout §5 of the paper.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            DhtRequest::Ping => TrafficClass::Other,
            DhtRequest::FindNode { .. } => TrafficClass::Other,
            DhtRequest::GetProviders { .. } => TrafficClass::Download,
            DhtRequest::AddProvider { .. } => TrafficClass::Advertise,
        }
    }
}

/// The paper's §5 classification of DHT traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Content-related downloads (provider resolution).
    Download,
    /// Content advertisement.
    Advertise,
    /// Everything else (joins, pings, FindNode walks).
    Other,
}

/// DHT response bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DhtResponse {
    /// Ping reply.
    Pong,
    /// Closest known peers to the requested target.
    Nodes {
        /// Peers closer to the target, from the responder's table.
        closer: Vec<PeerInfo>,
    },
    /// Provider records plus closer peers.
    Providers {
        /// Matching provider records (may be empty).
        providers: Vec<ProviderRecord>,
        /// Peers closer to the target, for continuing the walk.
        closer: Vec<PeerInfo>,
    },
}

/// A framed DHT message as delivered by the simulator.
#[derive(Clone, Debug)]
pub struct DhtMessage {
    /// Request/response correlation id (unique per sender).
    pub req_id: u64,
    /// The sender's self-description (identify exchange).
    pub sender: PeerInfo,
    /// Whether the sender runs in DHT server mode.
    pub sender_is_server: bool,
    /// Payload.
    pub body: DhtBody,
}

/// Request or response payload.
#[derive(Clone, Debug)]
pub enum DhtBody {
    /// A request expecting a response (except `AddProvider`).
    Request(DhtRequest),
    /// A response to an earlier request.
    Response(DhtResponse),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_types::Codec;

    #[test]
    fn traffic_classes_match_paper_taxonomy() {
        let cid = Cid::new_v1(Codec::Raw, b"x");
        let rec = ProviderRecord {
            cid,
            provider: PeerId::from_seed(1),
            addrs: crate::messages::no_addrs(),
            endpoint: NodeId(0),
            relay_endpoint: None,
            stored_at: SimTime::ZERO,
        };
        assert_eq!(
            DhtRequest::GetProviders { cid }.traffic_class(),
            TrafficClass::Download
        );
        assert_eq!(
            DhtRequest::AddProvider { record: rec }.traffic_class(),
            TrafficClass::Advertise
        );
        assert_eq!(DhtRequest::Ping.traffic_class(), TrafficClass::Other);
        assert_eq!(
            DhtRequest::FindNode {
                target: Key256::ZERO
            }
            .traffic_class(),
            TrafficClass::Other
        );
    }

    #[test]
    fn request_targets() {
        let cid = Cid::new_v1(Codec::Raw, b"y");
        assert_eq!(
            DhtRequest::GetProviders { cid }.target(),
            Some(cid.dht_key())
        );
        assert_eq!(DhtRequest::Ping.target(), None);
        let t = Key256::from_seed(9);
        assert_eq!(DhtRequest::FindNode { target: t }.target(), Some(t));
    }
}
