//! Multibase-style text encodings used by IPFS identifiers.
//!
//! * base58btc — the Bitcoin alphabet, used for legacy (CIDv0) content
//!   identifiers and the canonical text form of peer IDs;
//! * base32 lower-case without padding (RFC 4648) — used for CIDv1, prefixed
//!   with the multibase code `b`.
//!
//! Both codecs are implemented from scratch and round-trip-tested.

/// The Bitcoin base58 alphabet (no `0`, `O`, `I`, `l`).
const B58_ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// RFC 4648 base32 alphabet, lower case (the multibase `b` flavour).
const B32_ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Errors arising while decoding a textual identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A character outside the codec alphabet was found.
    InvalidChar(char),
    /// The input length is impossible for this codec.
    InvalidLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::InvalidChar(c) => write!(f, "invalid character {c:?}"),
            DecodeError::InvalidLength => write!(f, "invalid input length"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode `input` as base58btc.
pub fn base58btc_encode(input: &[u8]) -> String {
    // Count leading zero bytes: each encodes as '1'.
    let zeros = input.iter().take_while(|&&b| b == 0).count();
    // Big-number division in base 58 over the remaining bytes.
    let mut digits: Vec<u8> = Vec::with_capacity(input.len() * 138 / 100 + 1);
    for &byte in &input[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(B58_ALPHABET[d as usize] as char);
    }
    out
}

/// Decode a base58btc string.
pub fn base58btc_decode(input: &str) -> Result<Vec<u8>, DecodeError> {
    let mut index = [255u8; 128];
    for (i, &c) in B58_ALPHABET.iter().enumerate() {
        index[c as usize] = i as u8;
    }
    let zeros = input.chars().take_while(|&c| c == '1').count();
    let mut bytes: Vec<u8> = Vec::with_capacity(input.len() * 733 / 1000 + 1);
    for c in input.chars().skip(zeros) {
        if !c.is_ascii() {
            return Err(DecodeError::InvalidChar(c));
        }
        let v = index[c as usize];
        if v == 255 {
            return Err(DecodeError::InvalidChar(c));
        }
        let mut carry = v as u32;
        for b in bytes.iter_mut() {
            carry += (*b as u32) * 58;
            *b = (carry & 0xff) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            bytes.push((carry & 0xff) as u8);
            carry >>= 8;
        }
    }
    let mut out = vec![0u8; zeros];
    out.extend(bytes.iter().rev());
    Ok(out)
}

/// Encode `input` as unpadded lower-case base32.
pub fn base32_encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut bits = 0u32;
    for &b in input {
        acc = (acc << 8) | b as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(B32_ALPHABET[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(B32_ALPHABET[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decode unpadded lower-case base32.
pub fn base32_decode(input: &str) -> Result<Vec<u8>, DecodeError> {
    let mut index = [255u8; 128];
    for (i, &c) in B32_ALPHABET.iter().enumerate() {
        index[c as usize] = i as u8;
    }
    // Reject lengths that cannot result from unpadded encoding (1, 3, 6 mod 8).
    if matches!(input.len() % 8, 1 | 3 | 6) {
        return Err(DecodeError::InvalidLength);
    }
    let mut out = Vec::with_capacity(input.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut bits = 0u32;
    for c in input.chars() {
        if !c.is_ascii() {
            return Err(DecodeError::InvalidChar(c));
        }
        let v = index[c as usize];
        if v == 255 {
            return Err(DecodeError::InvalidChar(c));
        }
        acc = (acc << 5) | v as u64;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xff) as u8);
        }
    }
    // Trailing bits must be zero (canonical encoding).
    if bits > 0 && (acc & ((1 << bits) - 1)) != 0 {
        return Err(DecodeError::InvalidLength);
    }
    Ok(out)
}

/// Encode a u64 as an unsigned varint (LEB128), the framing integer used in
/// multihash/CID/multiaddr binary forms.
pub fn varint_encode(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned varint, returning the value and bytes consumed.
pub fn varint_decode(input: &[u8]) -> Result<(u64, usize), DecodeError> {
    let mut v: u64 = 0;
    for (i, &b) in input.iter().enumerate() {
        if i >= 10 {
            return Err(DecodeError::InvalidLength);
        }
        v |= ((b & 0x7f) as u64) << (7 * i);
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
    }
    Err(DecodeError::InvalidLength)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b58_known_vectors() {
        assert_eq!(base58btc_encode(b""), "");
        assert_eq!(base58btc_encode(b"hello world"), "StV1DL6CwTryKyV");
        assert_eq!(base58btc_encode(&[0, 0, 40, 127, 180, 205]), "11233QC4");
        assert_eq!(base58btc_decode("StV1DL6CwTryKyV").unwrap(), b"hello world");
    }

    #[test]
    fn b58_leading_zeros() {
        let data = [0u8, 0, 0, 1, 2, 3];
        let enc = base58btc_encode(&data);
        assert!(enc.starts_with("111"));
        assert_eq!(base58btc_decode(&enc).unwrap(), data);
    }

    #[test]
    fn b58_rejects_invalid() {
        assert!(base58btc_decode("0").is_err());
        assert!(base58btc_decode("O0Il").is_err());
        assert!(base58btc_decode("abcé").is_err());
    }

    #[test]
    fn b32_known_vectors() {
        // RFC 4648 vectors, lower-cased, unpadded.
        assert_eq!(base32_encode(b""), "");
        assert_eq!(base32_encode(b"f"), "my");
        assert_eq!(base32_encode(b"fo"), "mzxq");
        assert_eq!(base32_encode(b"foo"), "mzxw6");
        assert_eq!(base32_encode(b"foob"), "mzxw6yq");
        assert_eq!(base32_encode(b"fooba"), "mzxw6ytb");
        assert_eq!(base32_encode(b"foobar"), "mzxw6ytboi");
        assert_eq!(base32_decode("mzxw6ytboi").unwrap(), b"foobar");
    }

    #[test]
    fn b32_rejects_invalid() {
        assert!(base32_decode("a").is_err()); // impossible length
        assert!(base32_decode("a1").is_err()); // '1' not in alphabet
        assert!(base32_decode("MZ").is_err()); // upper case not accepted
    }

    #[test]
    fn varint_roundtrip_vectors() {
        for v in [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            varint_encode(v, &mut buf);
            let (back, used) = varint_decode(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_truncated() {
        assert!(varint_decode(&[0x80]).is_err());
        assert!(varint_decode(&[]).is_err());
    }
}
