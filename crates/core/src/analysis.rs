//! Decentralization analyses: Pareto/Lorenz concentration, degree
//! distributions, removal resilience, day-frequency, provider and CID
//! classification (§4–§6).

use crate::crawler::CrawlSnapshot;
use ipfs_types::PeerId;
use kademlia::ProviderRecord;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// Pareto / Lorenz
// ---------------------------------------------------------------------------

/// A point of the "simplified Pareto chart" the paper plots: the top
/// `x`-fraction of identifiers generate the `y`-fraction of traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LorenzPoint {
    /// Fraction of identifiers (sorted by activity, most active first).
    pub x: f64,
    /// Cumulative fraction of traffic they account for.
    pub y: f64,
}

/// Build the concentration curve from per-identifier activity counts.
/// Returns points sorted by `x` with monotonically increasing `y`.
pub fn lorenz_curve<K: Ord>(counts: &BTreeMap<K, u64>) -> Vec<LorenzPoint> {
    let mut values: Vec<u64> = counts.values().copied().collect();
    values.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let total: u64 = values.iter().sum();
    if total == 0 || values.is_empty() {
        return vec![];
    }
    let n = values.len() as f64;
    let mut acc = 0u64;
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            acc += v;
            LorenzPoint {
                x: (i + 1) as f64 / n,
                y: acc as f64 / total as f64,
            }
        })
        .collect()
}

/// Read the `y` value at a given `x` (top-fraction) off a Lorenz curve.
pub fn share_of_top(curve: &[LorenzPoint], x: f64) -> f64 {
    curve
        .iter()
        .find(|p| p.x >= x)
        .map(|p| p.y)
        .unwrap_or_else(|| curve.last().map(|p| p.y).unwrap_or(0.0))
}

// ---------------------------------------------------------------------------
// Degree distribution (Fig. 7)
// ---------------------------------------------------------------------------

/// Per-node degrees of one crawl graph.
#[derive(Clone, Debug, Default)]
pub struct DegreeStats {
    /// Out-degree (bucket contents) per crawlable peer.
    pub out_degrees: Vec<u32>,
    /// Estimated in-degree (presence in other peers' buckets) per peer.
    pub in_degrees: Vec<u32>,
    /// Peers sorted by in-degree, descending (ties by peer id).
    pub top_in_degree: Vec<(PeerId, u32)>,
}

/// Compute degree statistics from a snapshot.
pub fn degree_stats(snap: &CrawlSnapshot) -> DegreeStats {
    let mut out: HashMap<PeerId, u32> = HashMap::new();
    let mut inn: HashMap<PeerId, u32> = HashMap::new();
    for p in &snap.peers {
        inn.entry(p.peer).or_insert(0);
        if p.crawlable {
            out.entry(p.peer).or_insert(0);
        }
    }
    for (from, to) in &snap.edges {
        *out.entry(*from).or_insert(0) += 1;
        *inn.entry(*to).or_insert(0) += 1;
    }
    let mut out_degrees: Vec<u32> = snap
        .peers
        .iter()
        .filter(|p| p.crawlable)
        .map(|p| out.get(&p.peer).copied().unwrap_or(0))
        .collect();
    out_degrees.sort_unstable();
    let mut in_degrees: Vec<u32> = inn.values().copied().collect();
    in_degrees.sort_unstable();
    let mut top_in_degree: Vec<(PeerId, u32)> = inn.into_iter().collect();
    top_in_degree.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    DegreeStats {
        out_degrees,
        in_degrees,
        top_in_degree,
    }
}

/// Percentile (0..=100) of a sorted slice.
pub fn percentile(sorted: &[u32], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

/// CDF points `(value, fraction ≤ value)` from a sorted slice.
pub fn cdf(sorted: &[u32]) -> Vec<(u32, f64)> {
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        if i + 1 == sorted.len() || sorted[i + 1] != v {
            out.push((v, (i + 1) as f64 / n));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Resilience to node removal (Fig. 8)
// ---------------------------------------------------------------------------

/// Union-find over dense indices.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singletons.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Root with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Union by size; returns the new root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        ra
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Removal strategy for the resilience experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovalStrategy {
    /// Uniform random order (seeded).
    Random {
        /// RNG seed for the permutation.
        seed: u64,
    },
    /// Highest current degree first, recomputed after every removal.
    TargetedByDegree,
}

/// One resilience curve: after removing `removed_frac` of nodes, the
/// largest connected component spans `lcc_frac` of the *remaining* nodes.
#[derive(Clone, Debug)]
pub struct ResilienceCurve {
    /// Points `(removed fraction, LCC fraction of remaining)`.
    pub points: Vec<(f64, f64)>,
}

impl ResilienceCurve {
    /// LCC fraction at (or just past) a removal fraction.
    pub fn lcc_at(&self, removed: f64) -> f64 {
        self.points
            .iter()
            .find(|(r, _)| *r >= removed)
            .map(|(_, l)| *l)
            .unwrap_or_else(|| self.points.last().map(|(_, l)| *l).unwrap_or(0.0))
    }

    /// First removal fraction where the LCC drops to ≤ `frac` of remaining.
    pub fn partition_point(&self, frac: f64) -> f64 {
        self.points
            .iter()
            .find(|(_, l)| *l <= frac)
            .map(|(r, _)| *r)
            .unwrap_or(1.0)
    }
}

/// Undirected graph in adjacency form for removal experiments.
pub struct Graph {
    /// Adjacency lists over dense node indices.
    pub adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Build the undirected graph of a crawl snapshot (paper §4: all
    /// observable connections usable in both directions).
    pub fn from_snapshot(snap: &CrawlSnapshot) -> Graph {
        let mut index: HashMap<PeerId, u32> = HashMap::new();
        for p in &snap.peers {
            let next = index.len() as u32;
            index.entry(p.peer).or_insert(next);
        }
        let mut adj = vec![Vec::new(); index.len()];
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for (a, b) in &snap.edges {
            let (ia, ib) = (index[a], index[b]);
            if ia == ib {
                continue;
            }
            let key = (ia.min(ib), ia.max(ib));
            if seen.insert(key) {
                adj[ia as usize].push(ib);
                adj[ib as usize].push(ia);
            }
        }
        Graph { adj }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Largest-connected-component size over `alive` nodes.
    fn lcc(&self, alive: &[bool]) -> u32 {
        let n = self.adj.len();
        let mut uf = UnionFind::new(n);
        for (a, nbrs) in self.adj.iter().enumerate() {
            if !alive[a] {
                continue;
            }
            for &b in nbrs {
                if alive[b as usize] {
                    uf.union(a as u32, b);
                }
            }
        }
        let mut best = 0;
        for i in 0..n {
            if alive[i] {
                best = best.max(uf.component_size(i as u32));
            }
        }
        best
    }

    /// Run the removal experiment, sampling the LCC at `steps` evenly
    /// spaced removal fractions.
    pub fn resilience(&self, strategy: RemovalStrategy, steps: usize) -> ResilienceCurve {
        let n = self.adj.len();
        if n == 0 {
            return ResilienceCurve { points: vec![] };
        }
        // Removal order.
        let order: Vec<u32> = match strategy {
            RemovalStrategy::Random { seed } => {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut v: Vec<u32> = (0..n as u32).collect();
                v.shuffle(&mut rng);
                v
            }
            RemovalStrategy::TargetedByDegree => {
                // Recompute-highest-degree-first via a degree bucket walk.
                let mut degree: Vec<u32> = self.adj.iter().map(|a| a.len() as u32).collect();
                let mut alive = vec![true; n];
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    let (best, _) = degree
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| alive[*i])
                        .max_by_key(|(i, d)| (**d, usize::MAX - *i))
                        .expect("alive node exists");
                    alive[best] = false;
                    order.push(best as u32);
                    for &nb in &self.adj[best] {
                        if alive[nb as usize] && degree[nb as usize] > 0 {
                            degree[nb as usize] -= 1;
                        }
                    }
                }
                order
            }
        };
        let mut alive = vec![true; n];
        let mut points = Vec::with_capacity(steps + 1);
        let step_size = (n / steps.max(1)).max(1);
        points.push((0.0, self.lcc(&alive) as f64 / n as f64));
        for (removed, &node) in order.iter().enumerate() {
            alive[node as usize] = false;
            let removed = removed + 1;
            if removed % step_size == 0 || removed == n {
                let remaining = n - removed;
                let lcc = if remaining == 0 { 0 } else { self.lcc(&alive) };
                let frac = if remaining == 0 {
                    0.0
                } else {
                    lcc as f64 / remaining as f64
                };
                points.push((removed as f64 / n as f64, frac));
                if remaining == 0 {
                    break;
                }
            }
        }
        ResilienceCurve { points }
    }
}

// ---------------------------------------------------------------------------
// Day-frequency (Fig. 9)
// ---------------------------------------------------------------------------

/// Histogram of "days seen" per identifier: `hist[d-1]` = identifiers
/// observed on exactly `d` distinct days.
pub fn days_seen_histogram<K: Ord + Clone, I: IntoIterator<Item = (K, u64)>>(
    observations: I,
) -> Vec<u64> {
    let mut days: BTreeMap<K, HashSet<u64>> = BTreeMap::new();
    for (k, day) in observations {
        days.entry(k).or_default().insert(day);
    }
    let max_days = days.values().map(|s| s.len()).max().unwrap_or(0);
    let mut hist = vec![0u64; max_days];
    for s in days.values() {
        hist[s.len() - 1] += 1;
    }
    hist
}

// ---------------------------------------------------------------------------
// Provider classification (Figs. 14–16)
// ---------------------------------------------------------------------------

/// The paper's provider classes (Fig. 14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProviderClass {
    /// Reachable only through a relay (circuit address).
    Nat,
    /// All public addresses attribute to cloud providers.
    Cloud,
    /// Public, no cloud addresses.
    NonCloud,
    /// Mixed cloud and non-cloud addresses.
    Hybrid,
}

/// Classify one provider peer from all its records.
pub fn classify_provider<F>(records: &[&ProviderRecord], mut is_cloud: F) -> ProviderClass
where
    F: FnMut(Ipv4Addr) -> bool,
{
    let mut any_circuit = false;
    let mut cloud = 0usize;
    let mut noncloud = 0usize;
    for rec in records {
        for addr in rec.addrs.iter() {
            if addr.is_circuit() {
                any_circuit = true;
            } else if let Some(ip) = addr.ip4() {
                if is_cloud(ip) {
                    cloud += 1;
                } else {
                    noncloud += 1;
                }
            }
        }
    }
    match (cloud > 0, noncloud > 0) {
        (true, true) => ProviderClass::Hybrid,
        (true, false) => ProviderClass::Cloud,
        (false, true) => ProviderClass::NonCloud,
        (false, false) => {
            if any_circuit {
                ProviderClass::Nat
            } else {
                // No addresses at all: treat as NAT-ed (unreachable directly).
                ProviderClass::Nat
            }
        }
    }
}

/// Outcome of the content-level cloud analysis (Fig. 16).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CidCloudStats {
    /// CIDs analysed.
    pub total: usize,
    /// Share with ≥1 cloud-based provider.
    pub any_cloud: f64,
    /// Share where ≥50% of providers are cloud-based.
    pub majority_cloud: f64,
    /// Share with *only* cloud providers.
    pub all_cloud: f64,
    /// Share with ≥1 non-cloud provider (the paper's alternate reading).
    pub any_noncloud: f64,
}

/// Per-CID cloud percentages; NAT-ed providers count as non-cloud (§6).
pub fn cid_cloud_stats<F>(
    per_cid: &[(ipfs_types::Cid, Vec<&ProviderRecord>)],
    mut is_cloud: F,
) -> CidCloudStats
where
    F: FnMut(Ipv4Addr) -> bool,
{
    let mut stats = CidCloudStats::default();
    let mut counted = 0usize;
    for (_cid, records) in per_cid {
        if records.is_empty() {
            continue;
        }
        counted += 1;
        // Group records by provider peer so multi-record providers count once.
        let mut by_peer: BTreeMap<PeerId, Vec<&ProviderRecord>> = BTreeMap::new();
        for r in records {
            by_peer.entry(r.provider).or_default().push(r);
        }
        let classes: Vec<ProviderClass> = by_peer
            .values()
            .map(|rs| classify_provider(rs, &mut is_cloud))
            .collect();
        let cloud = classes
            .iter()
            .filter(|c| matches!(c, ProviderClass::Cloud | ProviderClass::Hybrid))
            .count();
        let total = classes.len();
        if cloud > 0 {
            stats.any_cloud += 1.0;
        }
        if cloud * 2 >= total {
            stats.majority_cloud += 1.0;
        }
        if cloud == total {
            stats.all_cloud += 1.0;
        }
        if cloud < total {
            stats.any_noncloud += 1.0;
        }
    }
    stats.total = counted;
    if counted > 0 {
        let n = counted as f64;
        stats.any_cloud /= n;
        stats.majority_cloud /= n;
        stats.all_cloud /= n;
        stats.any_noncloud /= n;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::CrawledPeer;
    use ipfs_types::{Cid, Multiaddr};
    use simnet::{NodeId, SimTime};

    #[test]
    fn lorenz_concentrated_distribution() {
        let mut counts = BTreeMap::new();
        counts.insert("whale", 9_800u64);
        for i in 0..99 {
            counts.insert(Box::leak(format!("small{i}").into_boxed_str()) as &str, 2);
        }
        let curve = lorenz_curve(&counts);
        // Top 1% (the whale) ≈ 98% of traffic.
        assert!(share_of_top(&curve, 0.011) > 0.97);
        let last = curve.last().unwrap();
        assert!((last.y - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(w[1].y >= w[0].y, "lorenz must be monotone");
        }
    }

    #[test]
    fn degree_stats_and_percentile() {
        let p: Vec<PeerId> = (0..4).map(PeerId::from_seed).collect();
        let snap = CrawlSnapshot {
            crawl_id: 1,
            peers: p
                .iter()
                .map(|&peer| CrawledPeer {
                    peer,
                    ips: vec![],
                    agent: String::new(),
                    crawlable: true,
                })
                .collect(),
            edges: vec![(p[0], p[1]), (p[0], p[2]), (p[1], p[2]), (p[3], p[0])],
            ..Default::default()
        };
        let d = degree_stats(&snap);
        assert_eq!(d.out_degrees.len(), 4);
        // In-degrees: p0 ← p3, p1 ← p0, p2 ← p0,p1 ; p3 ← none.
        assert_eq!(d.top_in_degree[0].1, 2);
        assert_eq!(percentile(&d.in_degrees, 100.0), 2.0);
        let c = cdf(&d.in_degrees);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    fn ring_graph(n: usize) -> Graph {
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            let j = (i + 1) % n;
            adj[i].push(j as u32);
            adj[j].push(i as u32);
        }
        Graph { adj }
    }

    #[test]
    fn union_find_components() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_size(4), 1);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn resilience_on_star_targeted_shatters_fast() {
        // Star graph: removing the hub disconnects everything.
        let n = 50;
        let mut adj = vec![Vec::new(); n];
        for i in 1..n {
            adj[0].push(i as u32);
            adj[i].push(0);
        }
        let g = Graph { adj };
        let targeted = g.resilience(RemovalStrategy::TargetedByDegree, 25);
        // After the very first removal (the hub), LCC = 1/49.
        assert!(targeted.points[1].1 < 0.05, "{:?}", &targeted.points[..3]);
        // Random removal keeps the star largely intact much longer.
        let random = g.resilience(RemovalStrategy::Random { seed: 3 }, 25);
        assert!(random.lcc_at(0.1) > targeted.lcc_at(0.1));
    }

    #[test]
    fn resilience_ring_survives_random() {
        let g = ring_graph(100);
        let c = g.resilience(RemovalStrategy::Random { seed: 1 }, 20);
        assert!((c.points[0].1 - 1.0).abs() < 1e-9, "ring starts connected");
        // partition_point is monotone-sane.
        assert!(c.partition_point(0.01) <= 1.0);
    }

    fn rec(cid: Cid, provider: u64, addrs: Vec<Multiaddr>) -> ProviderRecord {
        ProviderRecord {
            cid,
            provider: PeerId::from_seed(provider),
            addrs: addrs.into(),
            endpoint: NodeId(provider as u32),
            relay_endpoint: None,
            stored_at: SimTime::ZERO,
        }
    }

    #[test]
    fn provider_classification() {
        let cloud_ip: Ipv4Addr = "52.0.0.1".parse().unwrap();
        let home_ip: Ipv4Addr = "24.0.0.1".parse().unwrap();
        let is_cloud = |ip: Ipv4Addr| ip.octets()[0] == 52;
        let cid = Cid::from_seed(1);
        let direct = Multiaddr::ip4_tcp(cloud_ip, 4001);
        let home = Multiaddr::ip4_tcp(home_ip, 4001);
        let circuit =
            Multiaddr::circuit(cloud_ip, 4001, PeerId::from_seed(9), PeerId::from_seed(2));

        let r1 = rec(cid, 1, vec![direct.clone()]);
        assert_eq!(classify_provider(&[&r1], is_cloud), ProviderClass::Cloud);
        let r2 = rec(cid, 2, vec![circuit]);
        assert_eq!(classify_provider(&[&r2], is_cloud), ProviderClass::Nat);
        let r3 = rec(cid, 3, vec![home.clone()]);
        assert_eq!(classify_provider(&[&r3], is_cloud), ProviderClass::NonCloud);
        let r4 = rec(cid, 4, vec![direct, home]);
        assert_eq!(classify_provider(&[&r4], is_cloud), ProviderClass::Hybrid);
    }

    #[test]
    fn cid_cloud_stats_shapes() {
        let is_cloud = |ip: Ipv4Addr| ip.octets()[0] == 52;
        let cloud = Multiaddr::ip4_tcp("52.0.0.1".parse().unwrap(), 4001);
        let home = Multiaddr::ip4_tcp("24.0.0.1".parse().unwrap(), 4001);
        let (c1, c2, c3) = (Cid::from_seed(1), Cid::from_seed(2), Cid::from_seed(3));
        let r_cloud = rec(c1, 1, vec![cloud.clone()]);
        let r_home = rec(c2, 2, vec![home.clone()]);
        let r_cloud3 = rec(c3, 3, vec![cloud]);
        let r_home3 = rec(c3, 4, vec![home]);
        let data = vec![
            (c1, vec![&r_cloud]),            // all cloud
            (c2, vec![&r_home]),             // no cloud
            (c3, vec![&r_cloud3, &r_home3]), // half cloud
        ];
        let s = cid_cloud_stats(&data, is_cloud);
        assert_eq!(s.total, 3);
        assert!((s.any_cloud - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.all_cloud - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.majority_cloud - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.any_noncloud - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn days_histogram() {
        let obs = vec![
            ("a", 1u64),
            ("a", 1),
            ("a", 2),
            ("a", 3),
            ("b", 5),
            ("c", 1),
            ("c", 9),
        ];
        let h = days_seen_histogram(obs);
        assert_eq!(h, vec![1, 1, 1]); // b:1 day, c:2 days, a:3 days
    }
}
