//! The `whatif-cloud-exit` experiment: execute the paper's headline
//! counterfactual instead of extrapolating it.
//!
//! §4/§7 of the paper argue that with ~79.6% of DHT servers cloud-hosted
//! (A-N counting), a coordinated cloud exit would gut the network, and the
//! real-world Hydra-booster shutdown previewed a slice of that. Here we
//! *run* the counterfactual: one campaign per removal fraction, identical
//! up to the intervention, with the DHT probed immediately before and
//! shortly after the exit. Reported per row: user-facing lookup success
//! (≥1 reachable provider), raw record availability (records outlive their
//! providers until the 24 h TTL), lookup effort (peers contacted) and
//! lookup latency — plus the trace digest, so two runs of the same seed
//! can be compared byte-for-byte.

use crate::report::{Report, Unit};
use crate::Scale;
use ipfs_types::Cid;
use netgen::{ExitStyle, InterventionKind, InterventionSpec, InterventionTarget, PAPER};
use simnet::{Dur, SimTime};
use tcsb_core::{Campaign, CampaignOptions};
use whatif::DhtHealth;

/// When the exit fires (the campaign is warm and well-provided by then).
const T_EXIT: Dur = Dur(34 * 3_600 * 1_000_000_000);
/// Virtual settle time between the exit and the post-probe.
const SETTLE: Dur = Dur(2 * 3_600 * 1_000_000_000);
/// How long the region partition lasts before healing.
const PARTITION_HEAL: Dur = Dur(6 * 3_600 * 1_000_000_000);

/// One row of the sweep.
struct RowResult {
    label: String,
    removed: usize,
    population: usize,
    /// Uptime-weighted cloud share of the scenario's DHT servers (same
    /// value on every row — the scenarios are identical up to the plan).
    cloud_server_share: f64,
    pre: DhtHealth,
    post: DhtHealth,
    /// Probe taken after a partition healed (partition rows only).
    healed: Option<DhtHealth>,
    digest: u64,
}

fn probe_sample(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 30,
        Scale::Small => 90,
        Scale::Quick => 200,
        Scale::Stress => 300,
        Scale::Paper => 600,
        Scale::Internet => 600,
    }
}

/// The sweep: fractions of cloud-hosted peers removed abruptly, one
/// graceful comparison point, and the Hydra-fleet shutdown.
fn sweep(seed: u64) -> Vec<(String, Vec<InterventionSpec>)> {
    let at = SimTime::ZERO + T_EXIT;
    let mut rows: Vec<(String, Vec<InterventionSpec>)> =
        vec![("baseline (no exit)".into(), vec![])];
    for pct in [25u64, 50, 75, 100] {
        rows.push((
            format!("{pct}% of cloud peers exit (abrupt)"),
            vec![InterventionSpec::exit(
                at,
                InterventionTarget::CloudFraction {
                    fraction: pct as f64 / 100.0,
                    seed: seed ^ pct,
                },
                ExitStyle::Abrupt,
            )],
        ));
    }
    rows.push((
        "50% of cloud peers exit (graceful)".into(),
        vec![InterventionSpec::exit(
            at,
            InterventionTarget::CloudFraction {
                fraction: 0.5,
                seed: seed ^ 50,
            },
            ExitStyle::Graceful,
        )],
    ));
    rows.push((
        "all Hydras exit (abrupt)".into(),
        vec![InterventionSpec::hydra_shutdown(at)],
    ));
    // Eclipse-style region partition (per Prünster et al.): one latency
    // region severed from the rest of the network, healing 6 virtual hours
    // later — the post-probe lands mid-partition, the healed probe after
    // recovery, so the row measures both the outage and the heal time.
    rows.push((
        "EU region partitioned (heals at T+6h)".into(),
        vec![InterventionSpec {
            at,
            target: InterventionTarget::Region(1),
            kind: InterventionKind::Partition {
                heal_at: Some(at + PARTITION_HEAL),
            },
        }],
    ));
    rows
}

/// Run one row: a fresh campaign (same scenario seed ⇒ identical until the
/// intervention), probed before and after.
fn run_row(
    scale: Scale,
    seed: u64,
    label: &str,
    plan: Vec<InterventionSpec>,
    shards: usize,
) -> RowResult {
    // The counterfactual needs a settled, well-provided network — not a
    // multi-week campaign. Cap the virtual span and drop the request
    // workload (publishes still run; they create the provider records the
    // probe resolves).
    let mut cfg = scale.config(seed);
    cfg.duration = Dur::from_hours(48).min(cfg.duration);
    cfg.n_requests = 0;
    cfg.shards = shards;
    let plan_is_empty = plan.is_empty();
    let heal_at = plan
        .iter()
        .filter_map(|sp| match sp.kind {
            InterventionKind::Partition { heal_at } => heal_at,
            _ => None,
        })
        .max();
    cfg.interventions = plan;
    let scenario = netgen::build(cfg);
    let share = cloud_server_share(&scenario);
    // Probe CIDs: regular catalog items published well before the first
    // probe, in catalog order (deterministic).
    let probe_deadline = SimTime(T_EXIT.0.saturating_sub(Dur::from_hours(12).0));
    let cids: Vec<Cid> = scenario
        .content
        .iter()
        .filter(|item| item.publish_at < probe_deadline)
        .take(probe_sample(scale))
        .map(|item| item.cid)
        .collect();
    let mut campaign = Campaign::new(
        scenario,
        CampaignOptions {
            with_workload: true,
            with_requests: false,
            ..Default::default()
        },
    );
    let compiled = whatif::apply(&mut campaign);
    let removed: usize = compiled.iter().map(|c| c.nodes.len()).sum();
    let population = campaign.scenario.nodes.len();
    debug_assert!(plan_is_empty || removed > 0, "{label}: empty target set");

    // Pre-probe ends before T_EXIT (spacing 20 s per lookup + settle tail).
    let spacing = Dur::from_secs(20);
    let pre_at = T_EXIT
        .0
        .saturating_sub(spacing.0 * cids.len() as u64 + Dur::from_hours(2).0);
    campaign.run_for(Dur(pre_at));
    let pre = whatif::dht_health(&mut campaign, &cids, spacing);
    // Let the exit fire and the dust (RPC timeouts, reconnects) settle.
    let past_exit = (SimTime::ZERO + T_EXIT + SETTLE)
        .0
        .saturating_sub(campaign.now().0);
    campaign.run_for(Dur(past_exit));
    let post = whatif::dht_health(&mut campaign, &cids, spacing);
    // Partition rows: run past the heal and probe again (recovery view).
    let healed = heal_at.map(|h| {
        let past_heal = (h + SETTLE).0.saturating_sub(campaign.now().0);
        campaign.run_for(Dur(past_heal));
        whatif::dht_health(&mut campaign, &cids, spacing)
    });
    RowResult {
        label: label.to_string(),
        removed,
        population,
        cloud_server_share: share,
        pre,
        post,
        healed,
        digest: campaign.sim.core().trace_digest(),
    }
}

/// The `whatif-cloud-exit` artefact.
pub fn whatif_cloud_exit(scale: Scale, seed: u64, shards: usize) -> Report {
    let mut r = Report::new(
        "whatif-cloud-exit",
        "Counterfactual: lookup health under cloud exit",
    );
    let rows = sweep(seed);
    let n_rows = rows.len();
    let mut server_share = 0.0;
    for (i, (label, plan)) in rows.into_iter().enumerate() {
        eprintln!("[repro] whatif row {}/{n_rows}: {label} …", i + 1);
        let row = run_row(scale, seed, &label, plan, shards);
        server_share = row.cloud_server_share;
        r.val(
            &format!("lookup success — {}", row.label),
            row.post.success_rate,
            Unit::Pct,
        );
        let healed_part = row
            .healed
            .map(|h| {
                format!(
                    " · healed {:.1}% (latency {:.2}s)",
                    h.success_rate * 100.0,
                    h.mean_elapsed.as_secs_f64()
                )
            })
            .unwrap_or_default();
        r.note(format!(
            "{}: targeted {}/{} nodes · success {:.1}% → {:.1}% · records {:.1}% → {:.1}% · \
contacted {:.1} → {:.1} · latency {:.2}s → {:.2}s{} · digest {:#018x}",
            row.label,
            row.removed,
            row.population,
            row.pre.success_rate * 100.0,
            row.post.success_rate * 100.0,
            row.pre.record_availability * 100.0,
            row.post.record_availability * 100.0,
            row.pre.mean_contacted,
            row.post.mean_contacted,
            row.pre.mean_elapsed.as_secs_f64(),
            row.post.mean_elapsed.as_secs_f64(),
            healed_part,
            row.digest,
        ));
    }
    r.cmp(
        "cloud share of DHT servers (what p=100% removes, A-N-weighted)",
        PAPER.cloud_share_an,
        server_share,
        Unit::Pct,
    );
    r.note(
        "Each row is its own campaign, identical to the baseline up to the intervention \
(same scenario seed). Success = ≥1 reachable provider; record availability decays only \
with the 24 h TTL, so it outlives reachability after an exit. Same seed ⇒ identical \
digests per row, for every engine shard count. The partition row isolates one latency \
region (eclipse-style) and probes again after the heal.",
    );
    r.note(
        "Paper anchors: ≈79.6% of DHT servers are cloud-hosted (A-N, Fig. 3) and the DHT \
partitions only after ≈60% targeted removal (Fig. 8); the Hydra row mirrors the \
real-world 2023 Hydra-booster shutdown (§7).",
    );
    r
}

/// Run the full sweep and return only each row's `(label, trace digest)` —
/// the determinism-contract fingerprint the golden regression test pins at
/// tiny scale (a contract change shows up here in `cargo test`, not only
/// in the nightly EXPERIMENTS.md diff).
pub fn sweep_digests(scale: Scale, seed: u64, shards: usize) -> Vec<(String, u64)> {
    sweep(seed)
        .into_iter()
        .map(|(label, plan)| {
            let row = run_row(scale, seed, &label, plan, shards);
            (label, row.digest)
        })
        .collect()
}

/// Uptime-weighted cloud share of DHT *servers* — what a full cloud exit
/// removes from the crawlable network, comparable to the paper's A-N
/// counting (NAT-ed clients are invisible to crawls and excluded; each
/// node contributes its online fraction, so the ≈15%-uptime fringe counts
/// fractionally exactly as in Fig. 3).
fn cloud_server_share(scenario: &netgen::Scenario) -> f64 {
    let horizon = scenario.cfg.duration.0;
    let uptime = |n: &netgen::NodeSpec| -> f64 {
        n.sessions
            .iter()
            .map(|s| s.down.0.min(horizon).saturating_sub(s.up.0.min(horizon)))
            .sum::<u64>() as f64
            / horizon.max(1) as f64
    };
    let (mut cloud, mut total) = (0.0f64, 0.0f64);
    for n in scenario.nodes.iter().filter(|n| !n.nat) {
        let u = uptime(n);
        total += u;
        if n.provider.is_some() {
            cloud += u;
        }
    }
    cloud / total.max(f64::MIN_POSITIVE)
}
