//! Deterministic sharding-performance regression oracle on the stress
//! preset: the balanced partitioner must beat region-major on per-shard
//! dispatch balance, and per-pair lookahead horizons must beat the
//! uniform global-min horizon on epoch count at identical placement —
//! all while replaying byte-identical history. Counters, not wall
//! clock: every asserted number is deterministic, so this holds on any
//! host (including the 1-CPU CI runner).

use netgen::PlacementMode;
use simnet::{Dur, LookaheadMode};
use tcsb_core::{Campaign, CampaignOptions};

struct Slice {
    digest: u64,
    epochs: u64,
    /// Dispatched max/min ratio ×1000 (min clamped to 1).
    ratio_x1000: u64,
}

/// One bootstrap hour of the stress preset at 4 shards: dense enough to
/// exercise every shard pair continuously, small enough for a debug run.
fn stress_hour(placement: PlacementMode, lookahead: LookaheadMode) -> Slice {
    let scenario = netgen::build(netgen::ScenarioConfig::stress(7).with_shards(4));
    let mut campaign = Campaign::new(
        scenario,
        CampaignOptions {
            with_workload: true,
            with_requests: false,
            placement,
            ..Default::default()
        },
    );
    campaign.sim.set_lookahead_mode(lookahead);
    campaign.run_for(Dur::from_hours(1));
    let loads = campaign.sim.shard_loads();
    let max = loads.iter().map(|l| l.dispatched).max().unwrap_or(0);
    let min = loads.iter().map(|l| l.dispatched).min().unwrap_or(0).max(1);
    Slice {
        digest: campaign.sim.trace_digest(),
        epochs: loads[0].sync.epochs,
        ratio_x1000: max * 1000 / min,
    }
}

#[test]
fn balanced_placement_and_per_pair_horizons_beat_baselines() {
    let shipped = stress_hour(PlacementMode::Balanced, LookaheadMode::PerPair);
    let globalmin = stress_hour(PlacementMode::Balanced, LookaheadMode::GlobalMin);
    let regionmajor = stress_hour(PlacementMode::RegionMajor, LookaheadMode::GlobalMin);

    // Placement and lookahead mode move nodes between threads and resize
    // epoch windows — never history.
    assert_eq!(
        shipped.digest, globalmin.digest,
        "lookahead mode changed history"
    );
    assert_eq!(
        shipped.digest, regionmajor.digest,
        "placement changed history"
    );

    // Balance: region-major parks nearly all of the bootstrap-hour load
    // away from the region-3 shard (measured ratio ~430×); the balanced
    // partition stays within a few × even in this most-skewed hour.
    assert!(
        shipped.ratio_x1000 * 10 < regionmajor.ratio_x1000,
        "balanced dispatch ratio {} (×1000) should beat region-major {} (×1000) by ≥10×",
        shipped.ratio_x1000,
        regionmajor.ratio_x1000
    );

    // Lookahead: at identical placement, the per-pair matrix with dynamic
    // horizons must need at least 1.5× fewer epochs than the uniform
    // global-min horizon (measured ~1.8× on this slice, ~2.5× at 6h).
    assert!(
        shipped.epochs * 3 < globalmin.epochs * 2,
        "per-pair epochs {} should be ≤ 2/3 of global-min epochs {}",
        shipped.epochs,
        globalmin.epochs
    );

    // The epoch schedule is deterministic: all shards agree on it.
    assert!(shipped.epochs > 0, "multi-shard run must use epochs");
}
