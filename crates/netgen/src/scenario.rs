//! Scenario data model: the full description of one synthetic IPFS
//! ecosystem, consumed by `tcsb-core`'s campaign driver.
//!
//! A scenario is *pure data* — node specs, churn schedules, content catalog,
//! request traces, DNS zones, ENS logs — produced deterministically from a
//! [`ScenarioConfig`] and a seed. The simulation layer instantiates actors
//! from it; the measurement layer never reads it (except in tests that
//! validate the tools against planted ground truth).

use clouddb::CountryCode;
use dnslink::{DnsZoneDb, PassiveDnsFeed};
use ens::ResolverContract;
use ipfs_types::Cid;
use simnet::{Dur, SimTime};
use std::net::Ipv4Addr;

/// Population segment a node belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Cloud-hosted DHT server, stable, rarely rotates IPs.
    CloudStable,
    /// Non-cloud node with a public IP: churns and rotates.
    PublicFringe,
    /// NAT-ed DHT client (invisible to crawls, publishes via relays).
    NatClient,
    /// Single-interaction user: short sessions, fresh identity each time.
    Ephemeral,
    /// Platform-operated node (storage service, gateway, hydra host).
    Platform,
}

/// Known platforms (Fig. 13's reverse-DNS attribution buckets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// web3.storage — bulk persistent storage, dominates advertise traffic.
    Web3Storage,
    /// nft.storage — same operator class.
    NftStorage,
    /// Pinata pinning service.
    Pinata,
    /// ipfs-bank HTTP gateway platform — dominates Bitswap traffic.
    IpfsBank,
    /// Filebase modified clients (top in-degree nodes in Fig. 7).
    Filebase,
    /// Protocol Labs Hydra booster host (20 virtual heads each).
    Hydra,
    /// Gateway operator overlay node (Cloudflare, ipfs.io, …).
    Gateway,
}

impl Platform {
    /// Reverse-DNS suffix used for attribution.
    pub fn rdns_suffix(self) -> &'static str {
        match self {
            Platform::Web3Storage => "web3.storage",
            Platform::NftStorage => "nft.storage",
            Platform::Pinata => "pinata.cloud",
            Platform::IpfsBank => "ipfs-bank.net",
            Platform::Filebase => "filebase.com",
            Platform::Hydra => "hydra.amazonaws.com",
            Platform::Gateway => "gateway.net",
        }
    }
}

/// One online session of a node.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// Going online.
    pub up: SimTime,
    /// Going offline.
    pub down: SimTime,
    /// Index into the node's IP pool for this session.
    pub ip_idx: usize,
    /// Fresh identity seed adopted for this session, if any.
    pub new_identity: Option<u64>,
}

/// Full specification of one node.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Initial identity seed.
    pub identity_seed: u64,
    /// Population segment.
    pub segment: Segment,
    /// Cloud provider name, `None` for residential.
    pub provider: Option<&'static str>,
    /// Geolocation of the primary address.
    pub country: CountryCode,
    /// Latency region.
    pub region: u16,
    /// Behind NAT.
    pub nat: bool,
    /// Addresses this node rotates through (index 0 first).
    pub ips: Vec<Ipv4Addr>,
    /// Churn schedule (sorted by time; sessions never overlap).
    pub sessions: Vec<Session>,
    /// Platform membership.
    pub platform: Option<Platform>,
    /// Identify agent string.
    pub agent: String,
    /// PTR record, if any.
    pub rdns: Option<String>,
    /// Gateway overlay node (serves HTTP).
    pub gateway: bool,
    /// Additional announced address (multihoming / hybrid peers).
    pub extra_addr: Option<Ipv4Addr>,
}

/// One content item in the catalog.
#[derive(Clone, Debug)]
pub struct ContentItem {
    /// The content identifier.
    pub cid: Cid,
    /// Payload size in bytes.
    pub size: u32,
    /// Node indices that publish it (at `publish_at`).
    pub publishers: Vec<usize>,
    /// When publishing happens.
    pub publish_at: SimTime,
    /// Popularity window `[start, end]` in virtual days — most CIDs are
    /// requested on 1–3 distinct days only (Fig. 9).
    pub window: (u64, u64),
    /// Zipf popularity weight.
    pub weight: f64,
}

/// One workload request.
#[derive(Clone, Copy, Debug)]
pub enum Request {
    /// HTTP GET through a gateway frontend.
    Http {
        /// When.
        at: SimTime,
        /// Issuing node index (an ephemeral/NAT user).
        client: usize,
        /// Gateway index into [`Scenario::gateways`].
        gateway: usize,
        /// Content item index.
        item: usize,
    },
    /// Direct P2P fetch.
    Fetch {
        /// When.
        at: SimTime,
        /// Node index performing the fetch.
        node: usize,
        /// Content item index.
        item: usize,
    },
}

impl Request {
    /// The request timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            Request::Http { at, .. } | Request::Fetch { at, .. } => *at,
        }
    }
}

/// A public gateway (HTTP endpoint + overlay backends).
#[derive(Clone, Debug)]
pub struct GatewaySpec {
    /// Public hostname (e.g. `cloudflare-ipfs.com`).
    pub host: String,
    /// Listed in the public gateway register.
    pub listed: bool,
    /// Actually works (22 of the 83 listed did).
    pub functional: bool,
    /// HTTP frontend addresses (anycast ⇒ several).
    pub frontend_ips: Vec<Ipv4Addr>,
    /// Overlay node indices serving this gateway.
    pub overlay_nodes: Vec<usize>,
    /// Hosting provider of the frontends (`None` = non-cloud).
    pub provider: Option<&'static str>,
    /// Relative share of HTTP workload routed here.
    pub traffic_weight: f64,
}

/// Which nodes a scripted intervention removes or isolates. Targets are
/// resolved against the generated population by the `whatif` engine, always
/// deterministically (random culls carry their own seed).
#[derive(Clone, Debug, PartialEq)]
pub enum InterventionTarget {
    /// Every node hosted by a named cloud provider (`"choopa"`,
    /// `"amazon_aws"`, … — see `plan::CLOUD_PROVIDERS`).
    Provider(&'static str),
    /// Every node of a platform (e.g. [`Platform::Hydra`] for the
    /// real-world Hydra-booster shutdown counterfactual).
    Platform(Platform),
    /// Every node in a latency region (a coarse AS/geo partition lens).
    Region(u16),
    /// A seeded random sample of `fraction` of *all* nodes.
    RandomFraction {
        /// Share of the population, in `[0, 1]`.
        fraction: f64,
        /// Selection seed (independent of the scenario seed).
        seed: u64,
    },
    /// A seeded random sample of `fraction` of the *cloud-hosted* nodes
    /// (the paper's headline counterfactual: what if the cloud leaves?).
    CloudFraction {
        /// Share of cloud-hosted nodes, in `[0, 1]`.
        fraction: f64,
        /// Selection seed.
        seed: u64,
    },
}

/// How targeted nodes leave the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitStyle {
    /// Process kill: connections drop without FIN, peers discover the
    /// death through their own timeouts.
    Abrupt,
    /// Clean shutdown: sessions close with notifications; provider records
    /// pointing at the node expire naturally afterwards.
    Graceful,
}

/// What an intervention does to its target set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InterventionKind {
    /// Permanent exit at `InterventionSpec::at` (churn re-joins are
    /// suppressed afterwards).
    Exit {
        /// Abrupt kill vs graceful disconnect.
        style: ExitStyle,
    },
    /// Cut the target set off from the rest of the network, optionally
    /// healing at a later time.
    Partition {
        /// When connectivity is restored (`None` = never).
        heal_at: Option<SimTime>,
    },
}

/// One scripted mid-campaign event: at `at`, do `kind` to `target`.
#[derive(Clone, Debug, PartialEq)]
pub struct InterventionSpec {
    /// When the intervention fires.
    pub at: SimTime,
    /// Which nodes it hits.
    pub target: InterventionTarget,
    /// What happens to them.
    pub kind: InterventionKind,
}

impl InterventionSpec {
    /// A permanent exit of `target` at `at`.
    pub fn exit(at: SimTime, target: InterventionTarget, style: ExitStyle) -> InterventionSpec {
        InterventionSpec {
            at,
            target,
            kind: InterventionKind::Exit { style },
        }
    }

    /// The Hydra-fleet shutdown counterfactual (abrupt, as in the real
    /// 2023 decommissioning the paper discusses).
    pub fn hydra_shutdown(at: SimTime) -> InterventionSpec {
        InterventionSpec::exit(
            at,
            InterventionTarget::Platform(Platform::Hydra),
            ExitStyle::Abrupt,
        )
    }

    /// Canonical ordering key: a pure function of the spec's *content*, so
    /// sorting a plan by it yields the same schedule for every permutation
    /// of the input (ties between byte-identical specs are irrelevant —
    /// they compile identically). Time is the primary key; the remaining
    /// components are an arbitrary but fixed encoding of kind and target.
    pub fn canonical_key(&self) -> (u64, u8, u64, u8, u64, u64, String) {
        let (kind_code, kind_param) = match self.kind {
            InterventionKind::Exit { style } => (0u8, style as u64),
            InterventionKind::Partition { heal_at } => {
                (1, heal_at.map(|t| t.0.wrapping_add(1)).unwrap_or(0))
            }
        };
        // Target parameters stay separate key components — folding them
        // into one word could let two distinct targets collide, and the
        // stable sort's tie-break would then reintroduce input-order
        // dependence.
        let (tgt_code, tgt_a, tgt_b, tgt_name) = match &self.target {
            InterventionTarget::Provider(name) => (0u8, 0u64, 0u64, name.to_string()),
            InterventionTarget::Platform(p) => (1, *p as u64, 0, String::new()),
            InterventionTarget::Region(r) => (2, *r as u64, 0, String::new()),
            InterventionTarget::RandomFraction { fraction, seed } => {
                (3, fraction.to_bits(), *seed, String::new())
            }
            InterventionTarget::CloudFraction { fraction, seed } => {
                (4, fraction.to_bits(), *seed, String::new())
            }
        };
        (
            self.at.0, kind_code, kind_param, tgt_code, tgt_a, tgt_b, tgt_name,
        )
    }
}

/// Sort a plan into its canonical schedule order (time-major, then a fixed
/// content encoding). Both the `whatif` compiler and [`StagedExitSpec`]
/// use this, so a plan's compiled schedule is invariant under permutation
/// of its specs.
pub fn canonical_plan_order(plan: &mut [InterventionSpec]) {
    plan.sort_by_cached_key(|sp| sp.canonical_key());
}

/// One wave of a staged exit: at `at`, `target` leaves in `style`.
#[derive(Clone, Debug, PartialEq)]
pub struct ExitWave {
    /// When the wave fires.
    pub at: SimTime,
    /// Who leaves.
    pub target: InterventionTarget,
    /// How they leave.
    pub style: ExitStyle,
}

/// A staged multi-wave exit plan: provider A at T1, provider B at T2, …,
/// with an optional partition-then-heal stage riding along. This is the
/// first-class description of the longitudinal counterfactuals the paper's
/// §7 discussion implies (the Hydra shutdown was itself one wave of a
/// larger hypothetical cloud exodus); the `whatif` engine compiles the
/// waves in canonical time order with per-wave-disjoint target sets (a
/// node claimed by an earlier wave is not re-targeted by a later one).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StagedExitSpec {
    /// Exit waves, in any order (compilation canonicalizes).
    pub waves: Vec<ExitWave>,
    /// Optional partition stage: `(at, target, heal_at)`.
    pub partition: Option<(SimTime, InterventionTarget, Option<SimTime>)>,
}

impl StagedExitSpec {
    /// Empty plan (builder entry point).
    pub fn new() -> StagedExitSpec {
        StagedExitSpec::default()
    }

    /// Append an exit wave (builder-style).
    pub fn wave(mut self, at: SimTime, target: InterventionTarget, style: ExitStyle) -> Self {
        self.waves.push(ExitWave { at, target, style });
        self
    }

    /// Attach a partition stage, optionally healing later (builder-style).
    pub fn partition(
        mut self,
        at: SimTime,
        target: InterventionTarget,
        heal_at: Option<SimTime>,
    ) -> Self {
        self.partition = Some((at, target, heal_at));
        self
    }

    /// The paper-flavoured two-wave exodus: AWS leaves abruptly at `t1`,
    /// the Hydra fleet is decommissioned at `t2` (the real-world 2023
    /// shutdown as the second wave of a larger exit).
    pub fn aws_then_hydra(t1: SimTime, t2: SimTime) -> StagedExitSpec {
        StagedExitSpec::new()
            .wave(
                t1,
                InterventionTarget::Provider("amazon_aws"),
                ExitStyle::Abrupt,
            )
            .wave(
                t2,
                InterventionTarget::Platform(Platform::Hydra),
                ExitStyle::Abrupt,
            )
    }

    /// Lower the staged plan to ordinary intervention specs, in canonical
    /// schedule order.
    pub fn into_plan(self) -> Vec<InterventionSpec> {
        let mut plan: Vec<InterventionSpec> = self
            .waves
            .into_iter()
            .map(|w| InterventionSpec::exit(w.at, w.target, w.style))
            .collect();
        if let Some((at, target, heal_at)) = self.partition {
            plan.push(InterventionSpec {
                at,
                target,
                kind: InterventionKind::Partition { heal_at },
            });
        }
        canonical_plan_order(&mut plan);
        plan
    }
}

/// Size/shape knobs for scenario generation. See `paper.rs` for presets.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Virtual campaign length.
    pub duration: Dur,
    /// Cloud-hosted DHT servers.
    pub n_cloud: usize,
    /// Public non-cloud servers.
    pub n_fringe: usize,
    /// NAT-ed clients.
    pub n_nat: usize,
    /// Ephemeral single-interaction users.
    pub n_ephemeral: usize,
    /// Catalog size (regular items).
    pub n_content: usize,
    /// Total workload requests across the run.
    pub n_requests: usize,
    /// CIDs per storage platform (web3.storage / nft.storage / pinata).
    pub platform_cids: usize,
    /// Nodes per storage platform cluster.
    pub platform_nodes: usize,
    /// Hydra booster hosts (each runs 20 virtual heads).
    pub hydra_hosts: usize,
    /// Virtual peer IDs per hydra host.
    pub hydra_heads: usize,
    /// Listed gateway endpoints (83 in the paper).
    pub n_gateways_listed: usize,
    /// Functional gateways (22 in the paper).
    pub n_gateways_functional: usize,
    /// Root-domain universe for the DNS scan.
    pub n_domains: usize,
    /// Domains with DNSLink records.
    pub n_dnslink: usize,
    /// ENS `ipfs_ns` records (20.6k in the paper).
    pub n_ens_records: usize,
    /// Connection floor for regular nodes (Bitswap fan-out driver).
    pub conn_floor: usize,
    /// Share of requests served via HTTP gateways (vs direct fetch).
    pub http_share: f64,
    /// Fraction of publisher nodes announcing a second address of the
    /// opposite cloudness (the hybrid/BOTH populations).
    pub hybrid_fraction: f64,
    /// Scripted mid-campaign interventions (empty = none; executed by the
    /// `whatif` engine when the campaign is instantiated through it).
    pub interventions: Vec<InterventionSpec>,
    /// Engine shards the campaign runs on (`0` = auto: the `TCSB_SHARDS`
    /// environment variable, defaulting to 1). Node→shard assignment
    /// defaults to the weighted balanced partitioner
    /// ([`placement::balanced`]) over region-major order — hot regions
    /// may split across adjacent shards, and the executor's per-pair
    /// lookahead matrix keeps every non-split shard pair at its full
    /// inter-region latency floor. `TCSB_BALANCE=0` falls back to the
    /// whole-region [`shard_for`] assignment. Results are byte-identical
    /// for every shard count and placement — only wall-clock and
    /// per-shard load change.
    pub shards: usize,
}

impl ScenarioConfig {
    /// Attach an intervention plan (builder-style).
    pub fn with_interventions(mut self, plan: Vec<InterventionSpec>) -> ScenarioConfig {
        self.interventions = plan;
        self
    }

    /// Set the engine shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> ScenarioConfig {
        self.shards = shards;
        self
    }

    /// Resolve the effective shard count: an explicit setting wins,
    /// otherwise the `TCSB_SHARDS` environment variable, otherwise 1.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::env::var("TCSB_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }
}

pub use simnet::shard_for;

/// A fully generated scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The generating config.
    pub cfg: ScenarioConfig,
    /// Measurement-side IP databases.
    pub dbs: clouddb::IpDatabases,
    /// All nodes. The first [`Scenario::bootstrap_count`] are always-on
    /// bootstrap servers.
    pub nodes: Vec<NodeSpec>,
    /// Content catalog (regular + platform items).
    pub content: Vec<ContentItem>,
    /// Workload, sorted by time.
    pub requests: Vec<Request>,
    /// Gateways.
    pub gateways: Vec<GatewaySpec>,
    /// DNS zones (domain universe + DNSLink + gateway hosts).
    pub dns: DnsZoneDb,
    /// Scan candidate list (pre-reduction).
    pub dns_candidates: Vec<String>,
    /// Passive DNS feed covering gateway hostnames.
    pub pdns: PassiveDnsFeed,
    /// ENS resolver contracts with their event logs.
    pub ens_resolvers: Vec<ResolverContract>,
    /// Number of dedicated bootstrap nodes at the head of `nodes`.
    pub bootstrap_count: usize,
}

impl Scenario {
    /// Nodes belonging to a platform.
    pub fn platform_nodes(&self, p: Platform) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.platform == Some(p))
            .map(|(i, _)| i)
            .collect()
    }

    /// Ground-truth count of nodes in a segment (tests/calibration only).
    pub fn segment_count(&self, s: Segment) -> usize {
        self.nodes.iter().filter(|n| n.segment == s).count()
    }
}

/// Map a country to a coarse latency region.
pub fn region_of(country: CountryCode) -> u16 {
    match country.as_str() {
        "US" | "CA" => 0,
        "DE" | "FR" | "GB" | "NL" | "PL" | "UA" | "RU" | "FI" | "SE" => 1,
        "KR" | "JP" | "CN" | "SG" | "IN" | "AU" => 2,
        "BR" => 3,
        _ => 1,
    }
}
