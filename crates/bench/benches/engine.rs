//! Engine throughput benches: the timer-wheel scheduler and connection
//! fabric under synthetic load, plus a real ecosystem campaign slice.
//!
//! Besides the criterion timings printed per bench, this harness writes
//! `BENCH_engine.json` (events/sec, peak queue depth per workload) so the
//! scheduler's perf trajectory is tracked in-repo from PR to PR — CI runs
//! this in quick mode and uploads the file as an artifact.

use criterion::{black_box, criterion_group, Criterion};
use simnet::{
    Actor, Ctx, Dur, LatencyModel, NodeId, NodeSetup, Sim, SimConfig, SimStats, SimTime, TimerWheel,
};
use std::net::Ipv4Addr;
use std::time::Instant;

/// Ping-pong actor: every received message is answered until a hop budget
/// runs out — a pure scheduler/connection-fabric load with no protocol
/// logic.
struct Pong;

impl Actor for Pong {
    type Msg = u32;
    type Cmd = u32;

    fn on_command(&mut self, ctx: &mut Ctx<'_, u32, u32>, peer: u32) {
        ctx.dial(NodeId(peer));
    }

    fn on_dial_result(&mut self, ctx: &mut Ctx<'_, u32, u32>, target: NodeId, ok: bool, _: bool) {
        if ok {
            ctx.send(target, 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, from: NodeId, msg: u32) {
        if msg < 400 {
            ctx.send(from, msg + 1);
        }
    }
}

/// Timer-storm actor: every fired timer re-arms across three horizons
/// (near wheel, coarse wheel, far heap).
struct Storm;

impl Actor for Storm {
    type Msg = ();
    type Cmd = ();

    fn on_command(&mut self, ctx: &mut Ctx<'_, (), ()>, _cmd: ()) {
        for t in 0..8u64 {
            ctx.set_timer(Dur::from_millis(3 + t), t);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, (), ()>, token: u64) {
        let delay = match token % 3 {
            0 => Dur::from_millis(5), // near band
            1 => Dur::from_secs(40),  // coarse band
            _ => Dur::from_hours(11), // far band
        };
        ctx.set_timer(delay, token + 1);
    }
}

fn pingpong_sim(pairs: u32) -> Sim<Pong> {
    let mut s: Sim<Pong> = Sim::new(
        SimConfig::default(),
        LatencyModel::uniform(Dur::from_millis(25), 0.2),
        1,
    );
    for i in 0..pairs * 2 {
        let ip = Ipv4Addr::new(10, 2, (i / 256) as u8, (i % 256) as u8);
        s.add_node(Pong, NodeSetup::public(ip));
    }
    for p in 0..pairs {
        s.schedule_command(SimTime::ZERO, NodeId(2 * p), 2 * p + 1);
    }
    s
}

fn storm_sim(nodes: u32) -> Sim<Storm> {
    let mut s: Sim<Storm> = Sim::new(
        SimConfig::default(),
        LatencyModel::uniform(Dur::from_millis(10), 0.0),
        2,
    );
    for i in 0..nodes {
        let ip = Ipv4Addr::new(10, 3, (i / 256) as u8, (i % 256) as u8);
        s.add_node(Storm, NodeSetup::public(ip));
    }
    for i in 0..nodes {
        s.schedule_command(SimTime::ZERO, NodeId(i), ());
    }
    s
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_pingpong_256pairs", |b| {
        b.iter(|| {
            let mut s = pingpong_sim(256);
            s.run_for(Dur::from_secs(30));
            black_box(s.core().stats.events)
        })
    });
    c.bench_function("engine_timer_storm_512", |b| {
        b.iter(|| {
            let mut s = storm_sim(512);
            s.run_for(Dur::from_mins(5));
            black_box(s.core().stats.events)
        })
    });
    c.bench_function("wheel_push_pop_mixed_100k", |b| {
        b.iter(|| {
            let mut w: TimerWheel<u64> = TimerWheel::new();
            let mut now = 0u64;
            for i in 0..100_000u64 {
                // Mixed horizons: µs jitter, seconds, hours.
                let delay = match i % 5 {
                    0..=2 => (i * 7919) % 2_000_000,
                    3 => 1_000_000_000 + (i * 104_729) % 60_000_000_000,
                    _ => 3_600_000_000_000 + (i * 15_485_863) % 36_000_000_000_000,
                };
                w.push(simnet::SimTime(now + delay), i, i);
                if i % 2 == 0 {
                    if let Some((t, _, v)) = w.pop() {
                        now = t.0;
                        black_box(v);
                    }
                }
            }
            while let Some((_, _, v)) = w.pop() {
                black_box(v);
            }
        })
    });
}

/// One measured workload line in `BENCH_engine.json`.
fn measure<A: Actor>(mut sim: Sim<A>, horizon: Dur) -> (SimStats, f64) {
    let t = Instant::now();
    sim.run_for(horizon);
    (sim.core().stats.clone(), t.elapsed().as_secs_f64())
}

fn json_line(name: &str, stats: &SimStats, wall: f64) -> String {
    format!(
        "  \"{name}\": {{ \"events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}, \
\"peak_queue_len\": {}, \"msgs_delivered\": {} }}",
        stats.events,
        wall,
        stats.events as f64 / wall.max(1e-9),
        stats.peak_queue_len,
        stats.msgs_delivered
    )
}

/// One measured campaign run: `cfg` on `n` shards for `horizon` under an
/// explicit placement/lookahead policy pair.
struct SliceRun {
    stats: SimStats,
    state: simnet::StateBytes,
    loads: Vec<simnet::ShardLoad>,
    digest: u64,
    wall: f64,
}

fn run_campaign_slice(
    cfg: netgen::ScenarioConfig,
    n: usize,
    horizon: Dur,
    placement: netgen::PlacementMode,
    lookahead: simnet::LookaheadMode,
) -> SliceRun {
    let scenario = netgen::build(cfg.with_shards(n));
    let mut campaign = tcsb_core::Campaign::new(
        scenario,
        tcsb_core::CampaignOptions {
            with_workload: true,
            placement,
            ..Default::default()
        },
    );
    campaign.sim.set_lookahead_mode(lookahead);
    let t = Instant::now();
    campaign.run_for(horizon);
    SliceRun {
        wall: t.elapsed().as_secs_f64(),
        stats: campaign.sim.stats(),
        state: campaign.sim.state_bytes(),
        loads: campaign.sim.shard_loads(),
        digest: campaign.sim.trace_digest(),
    }
}

/// The load-balance venue: the crawl campaign (the `repro budget`
/// configuration the placement weight model is calibrated against), run
/// long enough that the bootstrap dial storm — which concentrates on the
/// region-0/cloud shard regardless of placement — stops dominating the
/// cumulative counters. Records the cumulative max/min dispatched ratio
/// at 48 virtual hours plus the 24→48 h steady-state window ratio; the
/// committed full-budget references in `ci/` extend the same trajectory
/// to 504 h (measured 1.49 balanced vs. 10.53 region-major).
fn placement_balance_row() -> String {
    let scenario = netgen::build(netgen::ScenarioConfig::stress(7).with_shards(4));
    let mut campaign = tcsb_core::Campaign::new(
        scenario,
        tcsb_core::CampaignOptions {
            with_workload: false,
            placement: netgen::PlacementMode::Balanced,
            ..Default::default()
        },
    );
    campaign
        .sim
        .set_lookahead_mode(simnet::LookaheadMode::PerPair);
    let t = Instant::now();
    campaign.run_for(Dur::from_hours(24));
    let mid: Vec<u64> = campaign
        .sim
        .shard_loads()
        .iter()
        .map(|l| l.dispatched)
        .collect();
    campaign.run_for(Dur::from_hours(24));
    let loads = campaign.sim.shard_loads();
    let cum: Vec<u64> = loads.iter().map(|l| l.dispatched).collect();
    let win: Vec<u64> = cum.iter().zip(&mid).map(|(c, m)| c - m).collect();
    let ratio =
        |v: &[u64]| *v.iter().max().unwrap() as f64 / (*v.iter().min().unwrap()).max(1) as f64;
    format!(
        "  \"placement_balance_stress_crawl_48h_shards4\": {{ \"digest\": \"{:#018x}\", \
\"epochs\": {}, \"dispatch_ratio_cum_48h\": {:.2}, \"dispatch_ratio_steady_24h_window\": {:.2}, \
\"dispatched\": {:?}, \"wall_secs\": {:.3} }}",
        campaign.sim.trace_digest(),
        loads[0].sync.epochs,
        ratio(&cum),
        ratio(&win),
        cum,
        t.elapsed().as_secs_f64(),
    )
}

/// Conservative-sync totals for one run: epoch count (max across shards —
/// they march in lockstep), summed barrier waits and mailbox volume, and
/// the max-to-min per-shard dispatched ratio (the load-balance objective;
/// 1.0 = perfect).
fn sync_summary(loads: &[simnet::ShardLoad]) -> (u64, u64, u64, u64, f64) {
    let mut agg = simnet::SyncCounters::default();
    for l in loads {
        agg.add(&l.sync);
    }
    let max_d = loads.iter().map(|l| l.dispatched).max().unwrap_or(0);
    let min_d = loads.iter().map(|l| l.dispatched).min().unwrap_or(0);
    let ratio = max_d as f64 / min_d.max(1) as f64;
    (
        agg.epochs,
        agg.barrier_waits,
        agg.mailbox_events_out,
        agg.mailbox_bytes_out,
        ratio,
    )
}

/// One campaign workload line. The digest pins the determinism contract
/// (identical history on every shard count, placement, and lookahead
/// policy); wall-clock is the scaling metric. The `state_bytes` fields
/// are the struct-of-arrays accounting: replicated columns cost a fixed
/// 8 B/node on every shard (the O(nodes) claim, measured), owner-only
/// columns exist exactly once across the whole engine. The sync fields
/// (`epochs`, `barrier_waits`, `mailbox_*`, `dispatch_ratio`) are
/// deterministic functions of `(scenario, seed, shards, placement,
/// lookahead)` — the perf regression oracle that works on any host.
/// `sync_overhead_only` flags rows where the host had fewer cores than
/// shards, so the wall-clock measures barrier/mailbox overhead rather
/// than parallel speedup — readers (and regression tooling) should not
/// interpret such a row as a scaling data point.
fn campaign_row(key: &str, n: usize, run: &SliceRun, base_wall: f64) -> String {
    let speedup = if base_wall > 0.0 {
        base_wall / run.wall
    } else {
        1.0
    };
    let nodes = run.state.nodes.max(1);
    let host_cpus = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let (epochs, barriers, mb_events, mb_bytes, ratio) = sync_summary(&run.loads);
    format!(
        "  \"{key}\": {{ \"events\": {}, \"wall_secs\": {:.3}, \
\"events_per_sec\": {:.0}, \"peak_queue_len\": {}, \"msgs_delivered\": {}, \
\"digest\": \"{:#018x}\", \"speedup_vs_1shard\": {:.2}, \"nodes\": {}, \
\"replica_bytes\": {}, \"replica_bytes_per_node_per_shard\": {:.2}, \
\"owned_bytes\": {}, \"epochs\": {epochs}, \"barrier_waits\": {barriers}, \
\"mailbox_out_events\": {mb_events}, \"mailbox_out_bytes\": {mb_bytes}, \
\"dispatch_ratio\": {ratio:.2}, \"sync_overhead_only\": {} }}",
        run.stats.events,
        run.wall,
        run.stats.events as f64 / run.wall.max(1e-9),
        run.stats.peak_queue_len,
        run.stats.msgs_delivered,
        run.digest,
        speedup,
        run.state.nodes,
        run.state.replica_bytes,
        run.state.replica_bytes as f64 / (nodes * n as u64) as f64,
        run.state.owned_bytes,
        host_cpus < n,
    )
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn write_engine_json() {
    let (pp_stats, pp_wall) = measure(pingpong_sim(512), Dur::from_secs(60));
    let (st_stats, st_wall) = measure(storm_sim(1024), Dur::from_mins(10));

    // A real ecosystem slice: tiny scenario, first 12 virtual hours.
    let scenario = netgen::build(netgen::ScenarioConfig::tiny(7));
    let mut campaign = tcsb_core::Campaign::new(
        scenario,
        tcsb_core::CampaignOptions {
            with_workload: true,
            ..Default::default()
        },
    );
    let t = Instant::now();
    campaign.run_for(Dur::from_hours(12));
    let camp_wall = t.elapsed().as_secs_f64();
    let camp_stats = campaign.sim.core().stats.clone();

    // Shard scaling: 1/2/4 shards over the identical stress slice, under
    // the shipped policy (balanced placement, per-pair lookahead). On a
    // multi-core host the wall-clock drops with the shard count; the
    // digest row proves the history did not change. `host_cpus` records
    // how many cores were actually available to scale onto.
    use netgen::PlacementMode::{Balanced, RegionMajor};
    use simnet::LookaheadMode::{GlobalMin, PerPair};
    let stress = netgen::ScenarioConfig::stress(7);
    let hours6 = Dur::from_hours(6);
    let r1 = run_campaign_slice(stress.clone(), 1, hours6, Balanced, PerPair);
    let base_wall = r1.wall;
    let base_digest = r1.digest;
    let r2 = run_campaign_slice(stress.clone(), 2, hours6, Balanced, PerPair);
    let r4 = run_campaign_slice(stress.clone(), 4, hours6, Balanced, PerPair);
    let s1 = campaign_row("campaign_stress_6h_shards1", 1, &r1, 0.0);
    let s2 = campaign_row("campaign_stress_6h_shards2", 2, &r2, base_wall);
    let s4 = campaign_row("campaign_stress_6h_shards4", 4, &r4, base_wall);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Sharding policy A/B at shards=4: the same slice under the pre-PR
    // executor semantics (global-min lookahead) and the pre-PR placement
    // (region-major), in all combinations. Every row must reproduce the
    // same digest — only the deterministic sync counters move. The
    // `sharding_ab` summary row distills the comparison: epoch reduction
    // of the shipped policy vs. the global-min baseline at the same
    // placement, and the dispatch-balance win vs. region-major.
    let ab = [
        (
            "campaign_stress_6h_shards4_regionmajor",
            RegionMajor,
            PerPair,
        ),
        ("campaign_stress_6h_shards4_globalmin", Balanced, GlobalMin),
        (
            "campaign_stress_6h_shards4_regionmajor_globalmin",
            RegionMajor,
            GlobalMin,
        ),
    ];
    let mut ab_rows = Vec::new();
    let mut ab_sync = Vec::new();
    for (key, place, look) in ab {
        let r = run_campaign_slice(stress.clone(), 4, hours6, place, look);
        assert_eq!(
            r.digest, base_digest,
            "{key}: placement/lookahead policy perturbed the trace digest"
        );
        ab_rows.push(campaign_row(key, 4, &r, base_wall));
        ab_sync.push(sync_summary(&r.loads));
    }
    let (ship_epochs, _, _, _, ship_ratio) = sync_summary(&r4.loads);
    let (_, _, _, _, rm_ratio) = ab_sync[0];
    let (base_epochs, ..) = ab_sync[1];
    let (rm_base_epochs, ..) = ab_sync[2];
    let ab_summary = format!(
        "  \"sharding_ab_stress_6h_shards4\": {{ \"epochs_shipped\": {ship_epochs}, \
\"epochs_globalmin_baseline\": {base_epochs}, \
\"epochs_regionmajor_globalmin\": {rm_base_epochs}, \
\"epoch_reduction_vs_baseline\": {:.2}, \"dispatch_ratio_shipped_6h_cum\": {ship_ratio:.2}, \
\"dispatch_ratio_regionmajor\": {rm_ratio:.2}, \"digests_identical\": true }}",
        base_epochs as f64 / ship_epochs.max(1) as f64,
    );
    let balance_row = placement_balance_row();

    // Telemetry overhead: the identical 1-shard stress slice with the
    // metrics registry live, measured as a *paired* A/B. Each round runs
    // a baseline/telemetry pair back-to-back and scores the round by its
    // own within-pair ratio, so the slow host drift that dominates this
    // box (single samples swing well over 10%) cancels inside the pair;
    // the pair order alternates each round (B,T | T,B | B,T | T,B) so
    // the second-position cache advantage cancels across rounds; the
    // reported overhead is the median of the per-round ratios, far more
    // robust than the ratio-of-medians that let schema/4 print a
    // nonsensical -25.8%. Raw walls are emitted so the row is
    // self-diagnosing. The digest must not move on any run — the
    // zero-perturbation contract, asserted right here so a perf run that
    // breaks it fails loudly.
    let mut base_walls = Vec::new();
    let mut telem_walls = Vec::new();
    let run_telem = || {
        telemetry::reset();
        telemetry::set_enabled(true);
        let rt = run_campaign_slice(stress.clone(), 1, hours6, Balanced, PerPair);
        telemetry::set_enabled(false);
        telemetry::reset();
        assert_eq!(
            rt.digest, base_digest,
            "telemetry-enabled stress run perturbed the trace digest"
        );
        rt.wall
    };
    let mut round_ratios = Vec::new();
    for round in 0..4 {
        let (b, t) = if round % 2 == 0 {
            let b = run_campaign_slice(stress.clone(), 1, hours6, Balanced, PerPair).wall;
            (b, run_telem())
        } else {
            let t = run_telem();
            (
                run_campaign_slice(stress.clone(), 1, hours6, Balanced, PerPair).wall,
                t,
            )
        };
        base_walls.push(b);
        telem_walls.push(t);
        round_ratios.push(t / b.max(1e-9));
    }
    let overhead_pct = (median(&mut round_ratios) - 1.0) * 100.0;
    let fmt_walls = |walls: &[f64]| {
        walls
            .iter()
            .map(|w| format!("{w:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let telemetry_row = format!(
        "  \"campaign_stress_6h_telemetry_shards1\": {{ \"overhead_pct\": {overhead_pct:.1}, \
\"paired_rounds\": 4, \"baseline_walls_secs\": [{}], \"telemetry_walls_secs\": [{}], \
\"digest_matches_baseline\": true }}",
        fmt_walls(&base_walls),
        fmt_walls(&telem_walls),
    );

    // Workload replay under load: a bench-sized generative request stream
    // (Zipf popularity, diurnal curves, a flash crowd) on the stress
    // scenario — 45k requests over a 6-virtual-hour window, the
    // fetch-path throughput venue (each request fans out into DHT lookup
    // + Bitswap traffic, ~1.5k engine events apiece, so this slice stays
    // minutes-not-hours in CI). Reports requests/s wall throughput and
    // the want-coalesce hit rate (coalesced / (coalesced + pipelines
    // started)) from the telemetry counters; the registry is forced on for
    // exactly this run so the rate reflects this row alone. The digest
    // pins the replay's determinism contract in the same file that tracks
    // its speed.
    let replay_row = {
        let hour = 3_600_000_000_000u64;
        let window = (SimTime(6 * hour), SimTime(12 * hour));
        let mut spec = netgen::WorkloadSpec::preset(40_000, window, 7 ^ 0xF00D);
        let span = window.1 .0 - window.0 .0;
        let f0 = window.0 .0 + span * 2 / 5;
        spec.flash = Some(netgen::FlashCrowdSpec {
            rank: 3,
            boost: 150,
            extra_requests: spec.total_requests / 8,
            window: (SimTime(f0), SimTime(f0 + span / 10)),
        });
        let total_requests = spec.total_requests + spec.flash.unwrap().extra_requests;
        let scenario = netgen::build(stress.clone().with_shards(1));
        telemetry::reset();
        telemetry::set_enabled(true);
        let mut campaign = tcsb_core::Campaign::new(
            scenario,
            tcsb_core::CampaignOptions {
                with_workload: true,
                with_requests: false,
                live_workload: Some(spec),
                ..Default::default()
            },
        );
        let t = Instant::now();
        campaign.run_for(Dur::from_hours(13));
        let wall = t.elapsed().as_secs_f64();
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        telemetry::reset();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let started = counter("fetches_started");
        let coalesced = counter("want_coalesce_hits");
        format!(
            "  \"workload_replay_stress\": {{ \"requests\": {total_requests}, \
\"wall_secs\": {wall:.3}, \"requests_per_sec\": {:.0}, \"events_per_sec\": {:.0}, \
\"fetch_pipelines_started\": {started}, \"want_coalesce_hits\": {coalesced}, \
\"want_coalesce_hit_rate\": {:.4}, \"digest\": \"{:#018x}\" }}",
            total_requests as f64 / wall.max(1e-9),
            campaign.sim.stats().events as f64 / wall.max(1e-9),
            coalesced as f64 / (coalesced + started).max(1) as f64,
            campaign.sim.trace_digest(),
        )
    };

    // Internet-scale row (~1M nodes): opt-in via TCSB_BENCH_INTERNET=1 —
    // the nightly workflow sets it; PR CI stays fast without it.
    let internet_row = if std::env::var("TCSB_BENCH_INTERNET").as_deref() == Ok("1") {
        let n = std::env::var("TCSB_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(1usize);
        let r = run_campaign_slice(
            netgen::ScenarioConfig::internet(7),
            n,
            Dur::from_hours(1),
            Balanced,
            PerPair,
        );
        format!(",\n{}", campaign_row("campaign_internet_1h", n, &r, 0.0))
    } else {
        String::new()
    };

    let body = format!(
        "{{\n  \"schema\": \"tcsb-bench-engine/6\",\n  \"host_cpus\": {host_cpus},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{}{}\n}}\n",
        json_line("pingpong_512pairs_60s", &pp_stats, pp_wall),
        json_line("timer_storm_1024_10min", &st_stats, st_wall),
        json_line("campaign_tiny_12h", &camp_stats, camp_wall),
        s1,
        s2,
        s4,
        ab_rows[0],
        ab_rows[1],
        ab_rows[2],
        ab_summary,
        balance_row,
        telemetry_row,
        replay_row,
        internet_row,
    );
    // `cargo bench` runs with the package dir as CWD; anchor the file at the
    // workspace root where CI (and readers) expect it.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_engine.json");
    std::fs::write(&path, &body).expect("write BENCH_engine.json");
    println!("wrote {}:\n{body}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_engine
}

fn main() {
    benches();
    write_engine_json();
}
