//! # netgen — calibrated synthetic IPFS ecosystem generator
//!
//! Produces deterministic [`Scenario`]s — populations, churn schedules, the
//! content catalog, request workloads, gateway fleets, DNS zones and ENS
//! logs — calibrated to the quantitative findings of the paper (constants
//! in [`paper::PAPER`]). Pure data: the simulation and measurement layers
//! live in `tcsb-core`.

pub mod build;
pub mod paper;
pub mod placement;
pub mod plan;
pub mod scenario;
pub mod workload;

pub use build::build;
pub use paper::{PaperTargets, PAPER};
pub use placement::{node_weight, Placement, PlacementItem, PlacementMode};
pub use plan::{
    build_databases, provider_plan, IpAllocator, ProviderPlan, CLOUDFLARE, CLOUD_PROVIDERS,
    DATACAMP, RESIDENTIAL_BLOCKS,
};
pub use scenario::{
    canonical_plan_order, region_of, shard_for, ContentItem, ExitStyle, ExitWave, GatewaySpec,
    InterventionKind, InterventionSpec, InterventionTarget, NodeSpec, Platform, Request, Scenario,
    ScenarioConfig, Segment, Session, StagedExitSpec,
};
pub use workload::{
    FlashCrowdSpec, RateCurve, RateStream, TickEmission, WorkloadSpec, ZipfSampler, N_REGIONS,
};
