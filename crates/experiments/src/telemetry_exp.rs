//! The `telemetry` artefact: a deterministic snapshot of the virtual-time
//! metrics registry over the crawl campaign.
//!
//! The registry records only commutative folds of virtual-time
//! observations, so the snapshot — like every table — is identical across
//! reruns and shard counts, and CI diffs the rendered lines against a
//! committed expectation file. Wall-clock profiler output never appears
//! here; it ships separately as a Chrome trace (`--profile-out`).

use crate::crawl_exp::{self, CrawlData};
use crate::report::{Report, Unit};
use netgen::ScenarioConfig;

/// Run the crawl campaign with the metrics registry live and return both
/// the dataset and the registry snapshot covering exactly that campaign.
/// The global telemetry flag is restored afterwards, so the remaining
/// artefact groups run with whatever the caller selected.
pub fn collect_instrumented(
    cfg: ScenarioConfig,
    n_crawls: usize,
) -> (CrawlData, telemetry::Snapshot) {
    let prev = telemetry::enabled();
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let data = crawl_exp::collect(cfg, n_crawls);
    let snap = telemetry::snapshot();
    telemetry::set_enabled(prev);
    (data, snap)
}

/// The EXPERIMENTS.md section for a registry snapshot.
pub fn report(snap: &telemetry::Snapshot) -> Report {
    let mut r = Report::new(
        "telemetry",
        "Telemetry registry — crawl campaign (virtual-time metrics)",
    );
    for (name, v) in &snap.counters {
        r.val(&format!("counter · {name}"), *v as f64, Unit::Count);
    }
    for (name, v) in &snap.gauges {
        r.val(&format!("gauge · {name}"), *v as f64, Unit::Count);
    }
    for (name, h) in &snap.hists {
        r.val(&format!("{name} · samples"), h.count as f64, Unit::Count);
        r.val(&format!("{name} · mean"), h.mean(), Unit::Count);
    }
    r.note(format!(
        "registry digest {:#018x} — deterministic per (scale, seed), invariant across \
reruns and shard counts; the trace digest is byte-identical with telemetry on or off \
(asserted in tests)",
        snap.digest()
    ));
    r.note(
        "tiny-scale pin (CI-diffed via ci/expected-telemetry-tiny.txt): trace digest \
0x0cf5aa2e25cac8d1, registry digest 0xdeb4313488b366fd",
    );
    r
}

/// Render the plain-text artefact CI diffs against an expectation file:
/// header, trace + registry digests, then the full registry in fixed id
/// order (occupied histogram buckets only). Deliberately omits the shard
/// count: unlike `budget`, every line here is shard-invariant, so the
/// same expectation file serves every shard count.
pub fn render_lines(
    scale_name: &str,
    seed: u64,
    trace_digest: u64,
    snap: &telemetry::Snapshot,
) -> String {
    let mut out = format!("telemetry scale={scale_name} seed={seed}\n");
    out.push_str(&format!("trace_digest {trace_digest:#018x}\n"));
    out.push_str(&format!("registry_digest {:#018x}\n", snap.digest()));
    for line in snap.render_lines() {
        out.push_str(&line);
        out.push('\n');
    }
    out
}
