//! The paper's ENS extraction pipeline (§3 "Ethereum Name Service"):
//! page through the event logs of a compiled set of resolver contracts,
//! keep `setContenthash` events, decode them, and keep the latest
//! `ipfs_ns` record per domain node.

use crate::contenthash::{decode, ContentHash};
use crate::contracts::{LogEntry, Node, ResolverContract, ResolverEvent};
use ipfs_types::Cid;
use std::collections::HashMap;

/// One extracted record: the latest IPFS pointer for a domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnsIpfsRecord {
    /// Domain node.
    pub node: Node,
    /// Referenced content.
    pub cid: Cid,
    /// Block of the latest update.
    pub block: u64,
}

/// Extraction statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Resolver contracts traversed.
    pub contracts: usize,
    /// Total log entries paged through.
    pub events: usize,
    /// `ContenthashChanged` events seen.
    pub contenthash_events: usize,
    /// Events whose payload decoded as `ipfs-ns`.
    pub ipfs_ns_events: usize,
    /// Distinct domains with an IPFS record (the paper's 20.6k).
    pub domains: usize,
}

/// Walk all resolver logs with Etherscan-style paging and extract the latest
/// IPFS record per domain.
pub fn extract_ipfs_records(
    resolvers: &[ResolverContract],
    page_size: usize,
) -> (Vec<EnsIpfsRecord>, ExtractStats) {
    let mut stats = ExtractStats {
        contracts: resolvers.len(),
        ..Default::default()
    };
    let mut latest: HashMap<Node, (u64, Cid)> = HashMap::new();
    for contract in resolvers {
        let mut offset = 0;
        loop {
            let page: Vec<LogEntry> = contract.get_logs(0, u64::MAX, offset, page_size);
            if page.is_empty() {
                break;
            }
            offset += page.len();
            for entry in &page {
                stats.events += 1;
                let ResolverEvent::ContenthashChanged { node, hash } = &entry.event else {
                    continue;
                };
                stats.contenthash_events += 1;
                let Ok(ContentHash::Ipfs(cid)) = decode(hash) else {
                    continue;
                };
                stats.ipfs_ns_events += 1;
                let slot = latest.entry(*node).or_insert((entry.block, cid));
                if entry.block >= slot.0 {
                    *slot = (entry.block, cid);
                }
            }
        }
    }
    stats.domains = latest.len();
    let mut records: Vec<EnsIpfsRecord> = latest
        .into_iter()
        .map(|(node, (block, cid))| EnsIpfsRecord { node, cid, block })
        .collect();
    records.sort_by_key(|r| r.node);
    (records, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contenthash::{encode_ipfs, encode_other, Namespace};
    use crate::contracts::{namehash, Address};

    #[test]
    fn extraction_keeps_latest_ipfs_only() {
        let mut r1 = ResolverContract::new(Address::from_seed(1));
        let mut r2 = ResolverContract::new(Address::from_seed(2));
        let site = namehash("site.eth");
        let app = namehash("app.eth");
        let swarm = namehash("swarm.eth");
        r1.set_contenthash(site, encode_ipfs(&Cid::from_seed(1)), 10);
        r1.set_contenthash(site, encode_ipfs(&Cid::from_seed(2)), 20); // update wins
        r1.set_addr(site, Address::from_seed(7), 25); // noise
        r2.set_contenthash(app, encode_ipfs(&Cid::from_seed(3)), 15);
        r2.set_contenthash(swarm, encode_other(Namespace::Swarm, b"bzz"), 16); // skipped
        let (records, stats) = extract_ipfs_records(&[r1, r2], 2 /* tiny pages */);
        assert_eq!(stats.contracts, 2);
        assert_eq!(stats.events, 5);
        assert_eq!(stats.contenthash_events, 4);
        assert_eq!(stats.ipfs_ns_events, 3);
        assert_eq!(stats.domains, 2);
        assert_eq!(records.len(), 2);
        let site_rec = records.iter().find(|r| r.node == site).unwrap();
        assert_eq!(site_rec.cid, Cid::from_seed(2));
        assert_eq!(site_rec.block, 20);
    }

    #[test]
    fn empty_resolver_set() {
        let (records, stats) = extract_ipfs_records(&[], 100);
        assert!(records.is_empty());
        assert_eq!(stats.domains, 0);
    }
}
