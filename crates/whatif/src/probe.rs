//! DHT health probes: the measurement side of a counterfactual.
//!
//! A probe drives the campaign's provider-record searcher over a sample of
//! CIDs and summarizes what a user would experience: did the lookup return
//! anything, is any returned provider actually reachable, how many peers
//! did the walk contact, how long did it take. Ran before and after an
//! intervention, the delta *is* the resilience result.

use ipfs_types::Cid;
use simnet::Dur;
use tcsb_core::Campaign;

/// Aggregate DHT health over one probe batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct DhtHealth {
    /// Lookups issued.
    pub lookups: usize,
    /// Lookups that completed at all (the rest timed out mid-walk).
    pub completed: usize,
    /// Share of lookups yielding ≥1 *reachable* provider — the user-facing
    /// success rate (denominator: all issued lookups).
    pub success_rate: f64,
    /// Share of lookups yielding ≥1 provider record, reachable or not —
    /// record availability decays on TTL after an exit, reachability
    /// collapses immediately.
    pub record_availability: f64,
    /// Mean peers contacted per completed walk (lookup effort; rises as
    /// the keyspace empties out).
    pub mean_contacted: f64,
    /// Mean virtual lookup latency over completed walks.
    pub mean_elapsed: Dur,
}

/// Probe the campaign's DHT through its searcher node. Advances virtual
/// time by roughly `spacing × cids.len()` plus a settle tail.
pub fn dht_health(campaign: &mut Campaign, cids: &[Cid], spacing: Dur) -> DhtHealth {
    let resolved = campaign.resolve_providers_timed(cids, false, spacing);
    let mut ok = 0usize;
    let mut any = 0usize;
    let mut contacted = 0usize;
    let mut elapsed = 0u64;
    for r in &resolved {
        if !r.records.is_empty() {
            any += 1;
        }
        if r.records.iter().any(|rec| campaign.record_reachable(rec)) {
            ok += 1;
        }
        contacted += r.contacted;
        elapsed += r.elapsed.0;
    }
    let n = cids.len().max(1) as f64;
    let done = resolved.len().max(1) as f64;
    DhtHealth {
        lookups: cids.len(),
        completed: resolved.len(),
        success_rate: ok as f64 / n,
        record_availability: any as f64 / n,
        mean_contacted: contacted as f64 / done,
        mean_elapsed: Dur((elapsed as f64 / done) as u64),
    }
}
