//! Intervention scheduling: compiled plans become ordinary engine events.
//!
//! Nothing here executes immediately — every lever is queued through the
//! simulator's `(time, seq)` event order, so an intervention interleaves
//! with the workload exactly the same way on every run with the same seed.

use crate::compile::{compile, CompiledIntervention};
use netgen::{ExitStyle, InterventionKind};
use simnet::Fault;
use tcsb_core::Campaign;

/// Compile and schedule the campaign scenario's intervention plan.
/// Call once, right after `Campaign::new` (events may be scheduled at any
/// future virtual time). Returns the compiled plan for reporting.
pub fn apply(campaign: &mut Campaign) -> Vec<CompiledIntervention> {
    let plan = compile(&campaign.scenario);
    schedule(campaign, &plan);
    plan
}

/// Schedule an already-compiled plan.
pub fn schedule(campaign: &mut Campaign, plan: &[CompiledIntervention]) {
    for (n, ci) in plan.iter().enumerate() {
        let at = ci.spec.at;
        telemetry::flight::span(
            at.0,
            0,
            "wave",
            match ci.spec.kind {
                InterventionKind::Exit {
                    style: ExitStyle::Abrupt,
                } => "exit-abrupt",
                InterventionKind::Exit {
                    style: ExitStyle::Graceful,
                } => "exit-graceful",
                InterventionKind::Partition { .. } => "partition",
            },
            ci.nodes.len() as u64,
        );
        match ci.spec.kind {
            InterventionKind::Exit { style } => {
                for &i in &ci.nodes {
                    let node = campaign.node_ids[i];
                    match style {
                        // Process kill: no on_stop, no FIN — peers learn of
                        // the death only through their own failed sends.
                        ExitStyle::Abrupt => {
                            campaign.sim.schedule_fault(at, Fault::Kill { node });
                        }
                        // Clean shutdown through the normal lifecycle:
                        // sessions close with notifications, and provider
                        // records pointing at the node expire on TTL.
                        ExitStyle::Graceful => campaign.sim.schedule_down(at, node),
                    }
                    // The exit is permanent: churn re-joins already queued
                    // for this node are swallowed from here on.
                    campaign.sim.schedule_fault(at, Fault::Retire { node });
                }
            }
            InterventionKind::Partition { heal_at } => {
                // Interventions get distinct classes so overlapping
                // partitions do not merge their islands; activations nest
                // in the engine, so healing this one (class reset + depth
                // decrement) leaves the others enforced.
                let class = (n + 1) as u16;
                for &i in &ci.nodes {
                    let node = campaign.node_ids[i];
                    campaign
                        .sim
                        .schedule_fault(at, Fault::SetNetClass { node, class });
                }
                campaign
                    .sim
                    .schedule_fault(at, Fault::Partition { active: true });
                if let Some(heal) = heal_at {
                    campaign
                        .sim
                        .schedule_fault(heal, Fault::Partition { active: false });
                    for &i in &ci.nodes {
                        let node = campaign.node_ids[i];
                        campaign
                            .sim
                            .schedule_fault(heal, Fault::SetNetClass { node, class: 0 });
                    }
                }
            }
        }
    }
}
