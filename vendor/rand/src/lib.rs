//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: [`Rng`] / [`RngExt`] / [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The build environment has no registry access, so
//! this shim keeps the workspace self-contained; the surface mirrors
//! `rand 0.9` naming (`random`, `random_range`, `random_bool`) closely
//! enough that swapping the real crate back in is a manifest-only change.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for the simulator's latency
//! jitter, churn sampling, and shuffles (the workspace's own tests assert
//! the first two moments of derived distributions).

pub mod rngs;
pub mod seq;

mod distr;
pub use distr::StandardSample;

/// Core random-number source. Everything else is derived from `next_u64`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Sample a value of a type with a canonical uniform distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng> RngExt for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Element types `random_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can produce a uniform sample of `T`. Blanket-implemented
/// over [`SampleUniform`] so integer literals in a range unify with the
/// expected output type (mirrors the real rand's inference behaviour).
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in random_range");
                let span = lo.abs_diff(hi) as u128;
                // Multiply-shift keeps the draw unbiased enough for
                // simulation purposes without a rejection loop.
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in random_range");
                let span = lo.abs_diff(hi) as u128 + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range in random_range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range in random_range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
