//! Shard-invariance regression tests: the same scenario must produce
//! byte-identical results — merged trace digest, every shard-invariant
//! counter, per-actor state — for every shard count. This is the engine's
//! v2 determinism contract (see `engine.rs` module docs) and the oracle the
//! multi-core campaign runner relies on.

use proptest::prelude::*;
use simnet::{
    Actor, Ctx, Dur, Fault, LatencyModel, NodeId, NodeSetup, RegionId, Sim, SimConfig, SimTime,
};
use std::net::Ipv4Addr;

/// A chatty actor exercising every event kind: dials, relayed dials,
/// messages, timers, loopback commands, disconnects.
#[derive(Default)]
struct Chatter {
    hops: u32,
    closed: u32,
    dials_ok: u32,
    dials_failed: u32,
}

#[derive(Clone, Debug)]
enum Cmd {
    DialRing,
    Ping(NodeId),
}

impl Actor for Chatter {
    type Msg = u32;
    type Cmd = Cmd;

    fn on_command(&mut self, ctx: &mut Ctx<'_, u32, Cmd>, cmd: Cmd) {
        match cmd {
            Cmd::DialRing => {
                let n = ctx.connection_count() as u32; // deterministic noise
                let me = ctx.me().0;
                for d in 1..=3 {
                    ctx.dial(NodeId((me + d + n) % POP));
                }
                ctx.set_timer(Dur::from_secs(30), u64::from(me));
            }
            Cmd::Ping(peer) => {
                ctx.send(peer, 0);
            }
        }
    }

    fn on_dial_result(&mut self, ctx: &mut Ctx<'_, u32, Cmd>, target: NodeId, ok: bool, _: bool) {
        if ok {
            self.dials_ok += 1;
            ctx.send(target, 1);
            ctx.schedule_self(Dur::from_mins(7), Cmd::Ping(target));
        } else {
            self.dials_failed += 1;
            // Retry through a relay if we have any connection to lean on.
            let relay = ctx.connections().next();
            if let Some(relay) = relay {
                if relay != target {
                    ctx.dial_via(relay, target);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32, Cmd>, from: NodeId, msg: u32) {
        self.hops += 1;
        if msg < 6 {
            ctx.send(from, msg + 1);
        } else if msg == 6 {
            ctx.disconnect(from);
        }
    }

    fn on_connection_closed(&mut self, _ctx: &mut Ctx<'_, u32, Cmd>, _peer: NodeId) {
        self.closed += 1;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, Cmd>, token: u64) {
        ctx.set_timer(Dur::from_mins(11), token);
        ctx.dial(NodeId(((token as u32) + 7) % POP));
    }
}

const POP: u32 = 48;

/// Fingerprint of one run: merged digest plus every shard-invariant
/// counter and a fold over per-actor state.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    digest: u64,
    events: u64,
    delivered: u64,
    dropped: u64,
    lost: u64,
    dials_ok: u64,
    dials_failed: u64,
    timers: u64,
    commands: u64,
    actor_fold: u64,
}

fn run(shards: usize, seed: u64, with_faults: bool, nat_stride: u32) -> Fingerprint {
    let mut s: Sim<Chatter> = Sim::new_sharded(
        SimConfig {
            loss: 0.01,
            dial_timeout: Dur::from_secs(9),
            max_events: u64::MAX,
        },
        LatencyModel::continents(4, Dur::from_millis(11), Dur::from_millis(87), 0.3),
        seed,
        shards,
    );
    for i in 0..POP {
        let mut setup = NodeSetup::public(Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8))
            .in_region(RegionId((i % 4) as u16));
        if nat_stride > 0 && i % nat_stride == 0 {
            setup.dialable = false;
        }
        let id = s.add_node(Chatter::default(), setup);
        s.schedule_command(
            SimTime::ZERO + Dur::from_millis(17 * (i as u64 + 1)),
            id,
            Cmd::DialRing,
        );
        // Churn: a third of the nodes bounce, hitting the far band of the
        // wheel (hours out).
        if i % 3 == 0 {
            s.schedule_down(SimTime::ZERO + Dur::from_mins(40 + i as u64), id);
            s.schedule_up(
                SimTime::ZERO + Dur::from_hours(2) + Dur::from_mins(i as u64),
                id,
                None,
            );
        }
    }
    if with_faults {
        let t = |m| SimTime::ZERO + Dur::from_mins(m);
        // Kill a couple of nodes abruptly, retire one, and split region 2
        // off for an hour — faults crossing every shard boundary at 2/4
        // shards (assignment is region % shards).
        s.schedule_fault(t(50), Fault::Kill { node: NodeId(5) });
        s.schedule_fault(t(50), Fault::Retire { node: NodeId(5) });
        s.schedule_fault(t(55), Fault::Kill { node: NodeId(11) });
        for i in 0..POP {
            if i % 4 == 2 {
                s.schedule_fault(
                    t(70),
                    Fault::SetNetClass {
                        node: NodeId(i),
                        class: 1,
                    },
                );
            }
        }
        s.schedule_fault(t(70), Fault::Partition { active: true });
        s.schedule_fault(t(130), Fault::Partition { active: false });
        for i in 0..POP {
            if i % 4 == 2 {
                s.schedule_fault(
                    t(130),
                    Fault::SetNetClass {
                        node: NodeId(i),
                        class: 0,
                    },
                );
            }
        }
    }
    // Chunked advance: epoch boundaries must not depend on how the harness
    // slices time.
    for k in 1..=5u64 {
        s.run_for(Dur::from_mins(36 * k));
    }
    let stats = s.stats();
    let mut actor_fold = 0u64;
    for i in 0..POP {
        let a = s.actor(NodeId(i));
        for v in [a.hops, a.closed, a.dials_ok, a.dials_failed] {
            actor_fold = actor_fold
                .wrapping_mul(0x100000001B3)
                .wrapping_add(v as u64);
        }
    }
    Fingerprint {
        digest: s.trace_digest(),
        events: stats.events,
        delivered: stats.msgs_delivered,
        dropped: stats.msgs_dropped,
        lost: stats.msgs_lost,
        dials_ok: stats.dials_ok,
        dials_failed: stats.dials_failed,
        timers: stats.timers_fired,
        commands: stats.commands,
        actor_fold,
    }
}

#[test]
fn shard_counts_agree_plain() {
    let one = run(1, 0xD15EA5E, false, 0);
    assert!(
        one.events > 10_000,
        "workload exercised the engine: {one:?}"
    );
    assert_eq!(one, run(2, 0xD15EA5E, false, 0), "2 shards ≠ 1 shard");
    assert_eq!(one, run(4, 0xD15EA5E, false, 0), "4 shards ≠ 1 shard");
}

#[test]
fn shard_counts_agree_with_faults_and_relays() {
    let one = run(1, 0xBEEF, true, 5);
    assert_eq!(one, run(2, 0xBEEF, true, 5), "2 shards ≠ 1 shard");
    assert_eq!(one, run(4, 0xBEEF, true, 5), "4 shards ≠ 1 shard");
    assert_eq!(one, run(7, 0xBEEF, true, 5), "7 shards ≠ 1 shard");
}

/// The struct-of-arrays memory contract: non-owner shards replicate only
/// the compact columns (owner handle u32 + net-class u16 + region u16 =
/// 8 bytes/node), so adding shards costs O(nodes), not O(nodes × 300B).
/// With an exact reservation the bound is tight: replica capacity == len.
#[test]
fn replica_bytes_stay_o_nodes() {
    let mut single_total = 0u64;
    for shards in [1usize, 2, 4] {
        let mut s: Sim<Chatter> = Sim::new_sharded(
            SimConfig::default(),
            LatencyModel::continents(4, Dur::from_millis(11), Dur::from_millis(87), 0.3),
            7,
            shards,
        );
        s.reserve_nodes(POP as usize);
        for i in 0..POP {
            let setup = NodeSetup::public(Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8))
                .in_region(RegionId((i % 4) as u16));
            let id = s.add_node(Chatter::default(), setup);
            s.schedule_command(
                SimTime::ZERO + Dur::from_millis(i as u64),
                id,
                Cmd::DialRing,
            );
        }
        s.run_for(Dur::from_mins(30));
        let loads = s.shard_loads();
        assert_eq!(loads.len(), shards);
        let owned: u64 = loads.iter().map(|l| l.state.owned_nodes).sum();
        assert_eq!(owned, POP as u64, "every node owned exactly once");
        let dispatched: u64 = loads.iter().map(|l| l.dispatched).sum();
        assert!(dispatched >= s.stats().events, "dispatched covers events");
        for l in &loads {
            // ≤ 8 bytes × nodes per shard replica — the O(nodes) claim.
            assert!(
                l.state.replica_bytes <= 8 * POP as u64,
                "shard {} replica {}B > 8B × {POP} nodes",
                l.shard,
                l.state.replica_bytes
            );
            assert_eq!(l.state.shared_bytes, 0, "no fork alive");
        }
        let total: u64 = loads.iter().map(|l| l.state.replica_bytes).sum();
        if shards == 1 {
            single_total = total;
        } else {
            // Each extra shard adds at most 8 bytes × nodes of replicas.
            assert!(
                total - single_total <= 8 * POP as u64 * (shards as u64 - 1),
                "extra-shard replica cost too high: {total} vs {single_total}"
            );
        }
    }
}

/// Like [`run`], but with an explicit node→shard assignment (the engine
/// API the balanced partitioner drives) instead of the region-major
/// default. `shard_of[i]` places node `i`.
fn run_placed(shards: usize, seed: u64, shard_of: &[u16]) -> Fingerprint {
    let mut s: Sim<Chatter> = Sim::new_sharded(
        SimConfig {
            loss: 0.01,
            dial_timeout: Dur::from_secs(9),
            max_events: u64::MAX,
        },
        LatencyModel::continents(4, Dur::from_millis(11), Dur::from_millis(87), 0.3),
        seed,
        shards,
    );
    for i in 0..POP {
        let setup = NodeSetup::public(Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8))
            .in_region(RegionId((i % 4) as u16));
        let id = s.add_node_in(Chatter::default(), setup, shard_of[i as usize]);
        s.schedule_command(
            SimTime::ZERO + Dur::from_millis(17 * (i as u64 + 1)),
            id,
            Cmd::DialRing,
        );
        if i % 3 == 0 {
            s.schedule_down(SimTime::ZERO + Dur::from_mins(40 + i as u64), id);
            s.schedule_up(
                SimTime::ZERO + Dur::from_hours(2) + Dur::from_mins(i as u64),
                id,
                None,
            );
        }
    }
    for k in 1..=5u64 {
        s.run_for(Dur::from_mins(36 * k));
    }
    let stats = s.stats();
    let mut actor_fold = 0u64;
    for i in 0..POP {
        let a = s.actor(NodeId(i));
        for v in [a.hops, a.closed, a.dials_ok, a.dials_failed] {
            actor_fold = actor_fold
                .wrapping_mul(0x100000001B3)
                .wrapping_add(v as u64);
        }
    }
    Fingerprint {
        digest: s.trace_digest(),
        events: stats.events,
        delivered: stats.msgs_delivered,
        dropped: stats.msgs_dropped,
        lost: stats.msgs_lost,
        dials_ok: stats.dials_ok,
        dials_failed: stats.dials_failed,
        timers: stats.timers_fired,
        commands: stats.commands,
        actor_fold,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds and NAT densities: every shard count replays the same
    /// history.
    #[test]
    fn shard_equivalence_randomized(seed in 1u64..1_000_000, nat_stride in 0u32..7, faults in any::<bool>()) {
        let one = run(1, seed, faults, nat_stride);
        prop_assert_eq!(&one, &run(2, seed, faults, nat_stride));
        prop_assert_eq!(&one, &run(4, seed, faults, nat_stride));
    }

    /// Placement invariance: an *arbitrary* node→shard assignment — the
    /// general case of which the balanced partitioner is one instance —
    /// replays the 1-shard history byte-for-byte, including assignments
    /// that split every region across many shards (the per-pair lookahead
    /// matrix then carries intra-region floors on the split pairs).
    #[test]
    fn placement_equivalence_randomized(
        seed in 1u64..1_000_000,
        shards_pick in 0usize..3,
        assign in proptest::collection::vec(0u16..7, POP as usize),
    ) {
        let shards = [2usize, 4, 7][shards_pick];
        let shard_of: Vec<u16> = assign.iter().map(|&a| a % shards as u16).collect();
        let one = run(1, seed, false, 0);
        prop_assert_eq!(&one, &run_placed(shards, seed, &shard_of));
    }
}
