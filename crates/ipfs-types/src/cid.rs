//! Content identifiers (CIDs) and multihashes.
//!
//! A CID binds a content codec to a multihash of the content bytes. We
//! implement the two wire versions the network actually uses:
//!
//! * **CIDv0** — bare sha2-256 multihash, base58btc text form (`Qm…`);
//! * **CIDv1** — `<version><codec><multihash>`, base32 text form with the
//!   multibase prefix `b` (`bafy…`).

use crate::base::{
    base32_decode, base32_encode, base58btc_decode, base58btc_encode, varint_decode, varint_encode,
    DecodeError,
};
use crate::key::Key256;
use crate::sha256::sha256;
use serde::{Deserialize, Serialize};

/// Multicodec content type codes (the subset IPFS uses in practice).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Codec {
    /// Raw bytes (0x55).
    Raw,
    /// MerkleDAG protobuf (0x70), the default for files.
    DagPb,
    /// CBOR DAG (0x71).
    DagCbor,
}

impl Codec {
    /// Multicodec numeric code.
    pub fn code(self) -> u64 {
        match self {
            Codec::Raw => 0x55,
            Codec::DagPb => 0x70,
            Codec::DagCbor => 0x71,
        }
    }

    /// Reverse of [`Codec::code`].
    pub fn from_code(code: u64) -> Option<Codec> {
        match code {
            0x55 => Some(Codec::Raw),
            0x70 => Some(Codec::DagPb),
            0x71 => Some(Codec::DagCbor),
            _ => None,
        }
    }
}

/// A sha2-256 multihash (function code 0x12, length 32).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Multihash(pub [u8; 32]);

impl Multihash {
    /// Hash content bytes.
    pub fn digest(data: &[u8]) -> Multihash {
        Multihash(sha256(data))
    }

    /// Binary form: `0x12 0x20 <32 bytes>`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(34);
        v.push(0x12);
        v.push(0x20);
        v.extend_from_slice(&self.0);
        v
    }

    /// Parse the binary form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Multihash, DecodeError> {
        if bytes.len() != 34 || bytes[0] != 0x12 || bytes[1] != 0x20 {
            return Err(DecodeError::InvalidLength);
        }
        let mut d = [0u8; 32];
        d.copy_from_slice(&bytes[2..]);
        Ok(Multihash(d))
    }
}

impl std::fmt::Debug for Multihash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Multihash(")?;
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

/// CID version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CidVersion {
    /// Legacy, dag-pb + base58btc only.
    V0,
    /// Self-describing.
    V1,
}

/// A content identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cid {
    /// Which wire format this CID uses.
    pub version: CidVersion,
    /// Content codec (always [`Codec::DagPb`] for v0).
    pub codec: Codec,
    /// The content multihash.
    pub hash: Multihash,
}

impl Cid {
    /// Hash `data` into a CIDv1 with the given codec.
    pub fn new_v1(codec: Codec, data: &[u8]) -> Cid {
        Cid {
            version: CidVersion::V1,
            codec,
            hash: Multihash::digest(data),
        }
    }

    /// Hash `data` into a legacy CIDv0 (dag-pb).
    pub fn new_v0(data: &[u8]) -> Cid {
        Cid {
            version: CidVersion::V0,
            codec: Codec::DagPb,
            hash: Multihash::digest(data),
        }
    }

    /// Deterministic test/bench constructor (raw codec, v1).
    pub fn from_seed(seed: u64) -> Cid {
        Cid::new_v1(Codec::Raw, &seed.to_be_bytes())
    }

    /// The DHT keyspace point for this CID: the SHA-256 of the multihash
    /// bytes, matching go-libp2p's second hashing step for record placement.
    pub fn dht_key(&self) -> Key256 {
        // Inline the 34-byte multihash encoding to keep this allocation-free
        // (computed on every GET_PROVIDERS / ADD_PROVIDER served).
        let mut buf = [0u8; 34];
        buf[0] = 0x12;
        buf[1] = 0x20;
        buf[2..].copy_from_slice(&self.hash.0);
        Key256::hash_of(&buf)
    }

    /// Binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self.version {
            CidVersion::V0 => self.hash.to_bytes(),
            CidVersion::V1 => {
                let mut v = Vec::with_capacity(36);
                varint_encode(1, &mut v);
                varint_encode(self.codec.code(), &mut v);
                v.extend_from_slice(&self.hash.to_bytes());
                v
            }
        }
    }

    /// Parse the binary form (v0 is recognized by the bare-multihash shape).
    pub fn from_bytes(bytes: &[u8]) -> Result<Cid, DecodeError> {
        if bytes.len() == 34 && bytes[0] == 0x12 && bytes[1] == 0x20 {
            return Ok(Cid {
                version: CidVersion::V0,
                codec: Codec::DagPb,
                hash: Multihash::from_bytes(bytes)?,
            });
        }
        let (ver, n1) = varint_decode(bytes)?;
        if ver != 1 {
            return Err(DecodeError::InvalidLength);
        }
        let (code, n2) = varint_decode(&bytes[n1..])?;
        let codec = Codec::from_code(code).ok_or(DecodeError::InvalidLength)?;
        let hash = Multihash::from_bytes(&bytes[n1 + n2..])?;
        Ok(Cid {
            version: CidVersion::V1,
            codec,
            hash,
        })
    }

    /// Canonical text form: base58btc for v0, multibase-`b` base32 for v1.
    pub fn to_string_canonical(&self) -> String {
        match self.version {
            CidVersion::V0 => base58btc_encode(&self.to_bytes()),
            CidVersion::V1 => format!("b{}", base32_encode(&self.to_bytes())),
        }
    }

    /// Parse either text form.
    pub fn parse(s: &str) -> Result<Cid, DecodeError> {
        if let Some(rest) = s.strip_prefix('b') {
            // multibase base32 (v1)
            return Cid::from_bytes(&base32_decode(rest)?);
        }
        if s.starts_with("Qm") {
            return Cid::from_bytes(&base58btc_decode(s)?);
        }
        Err(DecodeError::InvalidLength)
    }
}

impl std::fmt::Debug for Cid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.to_string_canonical();
        write!(f, "Cid({}…)", &s[..10.min(s.len())])
    }
}

impl std::fmt::Display for Cid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_string_canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v0_text_form_is_qm() {
        let cid = Cid::new_v0(b"hello");
        let s = cid.to_string_canonical();
        assert!(s.starts_with("Qm"), "{s}");
        assert_eq!(Cid::parse(&s).unwrap(), cid);
    }

    #[test]
    fn v1_text_form_is_bafy_like() {
        let cid = Cid::new_v1(Codec::DagPb, b"hello");
        let s = cid.to_string_canonical();
        assert!(s.starts_with('b'), "{s}");
        assert_eq!(Cid::parse(&s).unwrap(), cid);
    }

    #[test]
    fn binary_roundtrip_all_codecs() {
        for codec in [Codec::Raw, Codec::DagPb, Codec::DagCbor] {
            let cid = Cid::new_v1(codec, b"data");
            assert_eq!(Cid::from_bytes(&cid.to_bytes()).unwrap(), cid);
        }
        let v0 = Cid::new_v0(b"data");
        assert_eq!(Cid::from_bytes(&v0.to_bytes()).unwrap(), v0);
    }

    #[test]
    fn same_content_same_hash_different_version() {
        let v0 = Cid::new_v0(b"x");
        let v1 = Cid::new_v1(Codec::DagPb, b"x");
        assert_eq!(v0.hash, v1.hash);
        assert_ne!(v0, v1);
        // The DHT key only depends on the multihash.
        assert_eq!(v0.dht_key(), v1.dht_key());
    }

    #[test]
    fn dht_key_is_second_hash() {
        let cid = Cid::new_v0(b"y");
        assert_eq!(cid.dht_key(), Key256::hash_of(&cid.hash.to_bytes()));
        assert_ne!(cid.dht_key().0, cid.hash.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cid::parse("").is_err());
        assert!(Cid::parse("zzz").is_err());
        assert!(Cid::parse("b####").is_err());
    }
}
