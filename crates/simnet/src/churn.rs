//! Churn models: heavy-tailed online/offline session sampling.
//!
//! Measurement studies of IPFS churn ([13] in the paper) find session
//! lengths to be heavy-tailed: most fringe nodes stay minutes-to-hours,
//! a stable core stays up for weeks. We model per-segment session and
//! absence durations as log-normal variables, sampled with a hand-rolled
//! Box–Muller transform (the offline crate set has no `rand_distr`).

use crate::time::Dur;
use rand::{Rng, RngExt};

/// Standard-normal sampling via Box–Muller.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    // Uniform in (0, 1]: avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal distribution parameterized by the underlying normal's
/// mean (`mu`) and standard deviation (`sigma`).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of ln(X).
    pub mu: f64,
    /// Std-dev of ln(X).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the distribution's *median* (e^mu) and sigma — medians
    /// are the intuitive calibration knob for session lengths.
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive");
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }

    /// The distribution mean: exp(mu + sigma²/2).
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Alternating online/offline behaviour for one population segment.
#[derive(Clone, Copy, Debug)]
pub struct ChurnModel {
    /// Online session length (seconds).
    pub online: LogNormal,
    /// Offline gap length (seconds).
    pub offline: LogNormal,
    /// Probability of rotating to a fresh IP on re-join.
    pub ip_rotation: f64,
    /// Probability of regenerating the peer ID on re-join (the paper
    /// observes many single-interaction peer IDs).
    pub new_identity: f64,
}

impl ChurnModel {
    /// An (almost) always-on profile, as exhibited by cloud-hosted nodes:
    /// week-scale sessions, minute-scale gaps, no rotation.
    pub fn stable() -> ChurnModel {
        ChurnModel {
            online: LogNormal::from_median(14.0 * 86_400.0, 0.7),
            offline: LogNormal::from_median(300.0, 0.5),
            ip_rotation: 0.02,
            new_identity: 0.0,
        }
    }

    /// A fringe / residential profile: hour-scale sessions, long gaps,
    /// frequent DHCP-style IP rotation.
    pub fn fringe() -> ChurnModel {
        ChurnModel {
            online: LogNormal::from_median(2.0 * 3_600.0, 1.2),
            offline: LogNormal::from_median(10.0 * 3_600.0, 1.2),
            ip_rotation: 0.8,
            new_identity: 0.3,
        }
    }

    /// Sample an online session duration, clamped to `[min, max]`.
    pub fn sample_online(&self, rng: &mut impl Rng, min: Dur, max: Dur) -> Dur {
        let s = self.online.sample(rng);
        Dur::from_secs_f64(s).clamp(min, max)
    }

    /// Sample an offline gap duration, clamped to `[min, max]`.
    pub fn sample_offline(&self, rng: &mut impl Rng, min: Dur, max: Dur) -> Dur {
        let s = self.offline.sample(rng);
        Dur::from_secs_f64(s).clamp(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_calibration() {
        let d = LogNormal::from_median(3600.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median / 3600.0 - 1.0).abs() < 0.1, "median {median}");
        // Heavy tail: mean well above median.
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean > median * 1.3);
    }

    #[test]
    fn churn_sampling_respects_clamp() {
        let m = ChurnModel::fringe();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let d = m.sample_online(&mut rng, Dur::from_secs(60), Dur::from_hours(48));
            assert!(d >= Dur::from_secs(60) && d <= Dur::from_hours(48));
        }
    }

    #[test]
    fn stable_sessions_longer_than_fringe() {
        let mut rng = StdRng::seed_from_u64(4);
        let stable: f64 = (0..500)
            .map(|_| ChurnModel::stable().online.sample(&mut rng))
            .sum::<f64>()
            / 500.0;
        let fringe: f64 = (0..500)
            .map(|_| ChurnModel::fringe().online.sample(&mut rng))
            .sum::<f64>()
            / 500.0;
        assert!(stable > fringe * 10.0, "stable {stable} fringe {fringe}");
    }
}
